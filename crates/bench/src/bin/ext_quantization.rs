//! Extension experiment (paper Discussion, "Quantized models"): the effect
//! of post-training weight quantization on ensemble resilience, ReMIX
//! behaviour, and explanation stability.
//!
//! The paper states that shortened bit widths have negligible impact on
//! explainability but can diminish predictive capability — this binary
//! measures both on the reproduction substrate.

use rand::{rngs::StdRng, SeedableRng};
use remix_bench::{print_table, write_csv, FaultSetting, Row, Scale, TrainedStack};
use remix_core::{Remix, RemixVoter};
use remix_data::SyntheticSpec;
use remix_ensemble::{evaluate, UniformMajority};
use remix_faults::{pattern, FaultConfig, FaultType};
use remix_nn::quantize::quantize_weights;
use remix_xai::{Explainer, XaiTechnique};

fn main() {
    let scale = Scale::from_env();
    let (train, test) = SyntheticSpec::gtsrb_like()
        .train_size(scale.train_size)
        .test_size(scale.test_size)
        .generate();
    let pat = pattern::extract(&train, 3, 5);
    let setting = FaultSetting::Single(FaultConfig::new(FaultType::Mislabelling, 0.3));
    let mut rows = Vec::new();
    for bits in [16u32, 8, 4, 3] {
        // fresh stack per bit width (quantization is in-place)
        let mut stack = TrainedStack::train(&train, &pat, &setting, 3, &scale, 100);
        let mut mean_err = 0.0;
        for model in stack.ensemble.models.iter_mut() {
            mean_err += quantize_weights(model, bits).mean_abs_error;
        }
        mean_err /= stack.ensemble.len() as f32;
        let umaj = evaluate(&mut UniformMajority, &mut stack.ensemble, &test);
        let mut remix = RemixVoter::new(Remix::builder().build());
        let remix_eval = evaluate(&mut remix, &mut stack.ensemble, &test);
        rows.push(Row {
            panel: "ext-quant".into(),
            setting: format!("{bits}-bit (err {mean_err:.4})"),
            technique: "UMaj".into(),
            ba: umaj.balanced_accuracy,
            f1: 0.0,
            std: 0.0,
        });
        rows.push(Row {
            panel: "ext-quant".into(),
            setting: format!("{bits}-bit (err {mean_err:.4})"),
            technique: "ReMIX".into(),
            ba: remix_eval.balanced_accuracy,
            f1: 0.0,
            std: 0.0,
        });
        // explanation drift vs the unquantized model (SG cosine distance)
        if bits < 16 {
            let mut reference = TrainedStack::train(&train, &pat, &setting, 3, &scale, 100);
            let explainer = Explainer::new(XaiTechnique::SmoothGrad);
            let mut rng = StdRng::seed_from_u64(1);
            let mut drift = 0.0;
            let mut count = 0;
            for img in test.images.iter().take(20) {
                let (class, _) = reference.ensemble.models[0].predict(img);
                let before =
                    explainer.explain(&mut reference.ensemble.models[0], img, class, &mut rng);
                let after = explainer.explain(&mut stack.ensemble.models[0], img, class, &mut rng);
                drift += remix_diversity::DiversityMetric::CosineDistance.distance(&before, &after);
                count += 1;
            }
            println!(
                "{bits}-bit explanation drift (SG cosine distance vs f32): {:.3}",
                drift / count as f32
            );
        }
        eprintln!("[ext-quant] finished {bits}-bit");
    }
    print_table(&rows);
    write_csv("results/ext_quantization.csv", &rows).expect("write results");
    println!("\nPaper (Discussion): quantization has negligible explainability impact but");
    println!("can diminish predictive capability — compare BA across bit widths above.");
}
