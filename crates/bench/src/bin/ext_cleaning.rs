//! Extension experiment (paper Discussion, "Combination with Other Training
//! Data Fault Tolerance Strategies"): ReMIX *combined with* Cleanlab-style
//! data cleaning, which the paper leaves as future work.
//!
//! Compares four pipelines on 30 % mislabelled gtsrb-like data:
//! UMaj, ReMIX, UMaj + cleaning, ReMIX + cleaning.

use rand::{rngs::StdRng, SeedableRng};
use remix_bench::{print_table, write_csv, Row, Scale};
use remix_core::{Remix, RemixVoter};
use remix_data::SyntheticSpec;
use remix_ensemble::{evaluate, train_zoo, TrainedEnsemble, UniformMajority, Voter};
use remix_faults::{clean, inject, pattern, FaultConfig, FaultType};
use remix_nn::Arch;

fn main() {
    let scale = Scale::from_env();
    let (train, test) = SyntheticSpec::gtsrb_like()
        .train_size(scale.train_size)
        .test_size(scale.test_size)
        .generate();
    let pat = pattern::extract(&train, 3, 5);
    let mut rng = StdRng::seed_from_u64(7);
    let faulty = inject(
        &train,
        FaultConfig::new(FaultType::Mislabelling, 0.3),
        &pat,
        &mut rng,
    );
    let cleaned = clean(&faulty.dataset, 3, 0.5, 11);
    let truly_corrupted: std::collections::HashSet<usize> =
        faulty.corrupted.iter().copied().collect();
    let hits = cleaned
        .removed
        .iter()
        .filter(|i| truly_corrupted.contains(i))
        .count();
    println!(
        "cleaning removed {} samples, {} of them genuinely mislabelled \
         (precision {:.2}, recall {:.2})\n",
        cleaned.removed.len(),
        hits,
        hits as f32 / cleaned.removed.len().max(1) as f32,
        hits as f32 / faulty.corrupted.len().max(1) as f32,
    );
    let archs = [Arch::ConvNet, Arch::ResNet18, Arch::EfficientNetV2B0];
    let mut rows = Vec::new();
    for (label, dataset) in [("faulty", &faulty.dataset), ("cleaned", &cleaned.dataset)] {
        let models = train_zoo(&archs, dataset, scale.epochs, 21);
        let mut ensemble = TrainedEnsemble::new(models);
        let mut voters: Vec<Box<dyn Voter>> = vec![
            Box::new(UniformMajority),
            Box::new(RemixVoter::new(Remix::builder().build())),
        ];
        for voter in &mut voters {
            let eval = evaluate(voter.as_mut(), &mut ensemble, &test);
            rows.push(Row {
                panel: "ext-cleaning".into(),
                setting: label.into(),
                technique: eval.voter.clone(),
                ba: eval.balanced_accuracy,
                f1: eval.f1,
                std: 0.0,
            });
        }
    }
    print_table(&rows);
    write_csv("results/ext_cleaning.csv", &rows).expect("write results");
    println!("\nPaper (Discussion): data cleaning is complementary to ReMIX; evaluating");
    println!("the combination was left as future work — this binary provides it.");
}
