//! Fig. 6b: correct-prediction rate vs feature sparseness, in logarithmic
//! bins, with the paper's `tanh(20x)` trendline for comparison.

use rand::{rngs::StdRng, SeedableRng};
use remix_bench::{FaultSetting, Scale, TrainedStack};
use remix_data::SyntheticSpec;
use remix_diversity::sparseness_with_threshold;
use remix_faults::{pattern, FaultConfig, FaultType};
use remix_xai::{Explainer, XaiTechnique};

fn main() {
    let scale = Scale::from_env();
    let (train, test) = SyntheticSpec::gtsrb_like()
        .train_size(scale.train_size)
        .test_size(scale.test_size)
        .generate();
    let pat = pattern::extract(&train, 3, 5);
    let setting = FaultSetting::Single(FaultConfig::new(FaultType::Mislabelling, 0.3));
    let mut stack = TrainedStack::train(&train, &pat, &setting, 3, &scale, 100);
    let explainer = Explainer::new(XaiTechnique::SmoothGrad);
    let mut rng = StdRng::seed_from_u64(4);
    // (sparseness, correct) per model per input
    let mut samples: Vec<(f32, bool)> = Vec::new();
    for (img, l) in test.iter() {
        for m in 0..stack.ensemble.len() {
            let (pred, _) = stack.ensemble.models[m].predict(img);
            let matrix = explainer.explain(&mut stack.ensemble.models[m], img, pred, &mut rng);
            let sigma = sparseness_with_threshold(&matrix, 0.2);
            samples.push((sigma, pred == l));
        }
    }
    // 10 logarithmic bins between 0.01 and 1 (paper's binning)
    const BINS: usize = 10;
    let edges: Vec<f32> = (0..=BINS)
        .map(|i| 0.01f32 * (100.0f32).powf(i as f32 / BINS as f32))
        .collect();
    println!("Fig. 6b — correct predictions vs feature sparseness (log bins)\n");
    println!(
        "{:<16} {:>7} {:>10} {:>12}",
        "sparseness bin", "n", "% correct", "tanh(20·mid)"
    );
    for w in edges.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let in_bin: Vec<&(f32, bool)> = samples
            .iter()
            .filter(|(s, _)| *s >= lo && *s < hi)
            .collect();
        if in_bin.is_empty() {
            continue;
        }
        let correct = in_bin.iter().filter(|(_, c)| *c).count();
        let mid = (lo * hi).sqrt();
        println!(
            "[{lo:.3}, {hi:.3}) {:>7} {:>9.1}% {:>12.3}",
            in_bin.len(),
            correct as f32 / in_bin.len() as f32 * 100.0,
            (20.0 * mid).tanh()
        );
    }
    println!("\nPaper: very low sparseness bins have markedly lower correctness,");
    println!("which Eq. 5's tanh(α·σ) term penalizes (trendline y = tanh(20x)).");
}
