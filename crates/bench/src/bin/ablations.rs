//! Ablation studies over ReMIX's design choices (DESIGN.md §8):
//!
//! * `--study alpha` — sweep the sparseness steepness α in Eq. 5;
//! * `--study weights` — drop individual terms of `ω = c·δ·tanh(α·σ)`;
//! * `--study threshold` — sweep the majority threshold (0.5 = the paper's
//!   disengagement rule, lower = plurality voting);
//! * `--study xai-cost` — SmoothGrad sample count vs resilience and runtime;
//! * `--study fast-path` — the unanimity fast path's effect on runtime.
//!
//! Default: run all studies.

use remix_bench::{print_table, write_csv, FaultSetting, Row, Scale, TrainedStack};
use remix_core::{Remix, RemixBuilder, RemixVoter};
use remix_data::SyntheticSpec;
use remix_ensemble::Voter;
use remix_faults::{pattern, FaultConfig, FaultType};
use remix_xai::ExplainerConfig;

fn main() {
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args().collect();
    let study = args
        .iter()
        .position(|a| a == "--study")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    let (train, test) = SyntheticSpec::gtsrb_like()
        .train_size(scale.train_size)
        .test_size(scale.test_size)
        .generate();
    let pat = pattern::extract(&train, 3, 5);
    let setting = FaultSetting::Single(FaultConfig::new(FaultType::Mislabelling, 0.3));
    let mut stack = TrainedStack::train(&train, &pat, &setting, 3, &scale, 100);
    let mut rows: Vec<Row> = Vec::new();
    fn run(
        rows: &mut Vec<Row>,
        test: &remix_data::Dataset,
        panel: &str,
        label: String,
        builder: RemixBuilder,
        stack: &mut TrainedStack,
    ) {
        let mut voter = RemixVoter::new(builder.build());
        let ((ba, f1), dt) = remix_trace::timed("ablation_evaluate", || {
            stack.evaluate_voter(&mut voter, test)
        });
        let secs = dt.as_secs_f32();
        rows.push(Row {
            panel: panel.into(),
            setting: label,
            technique: "ReMIX".into(),
            ba,
            f1,
            std: secs, // the std column doubles as wall-clock seconds here
        });
    }

    if study == "all" || study == "alpha" {
        for alpha in [5.0f32, 10.0, 20.0, 40.0] {
            run(
                &mut rows,
                &test,
                "abl-alpha",
                format!("alpha={alpha}"),
                Remix::builder().alpha(alpha),
                &mut stack,
            );
        }
    }
    if study == "all" || study == "weights" {
        // full Eq. 5
        run(
            &mut rows,
            &test,
            "abl-weights",
            "full ω=c·δ·tanh(ασ)".into(),
            Remix::builder(),
            &mut stack,
        );
        // no sparseness term: α huge so tanh saturates to 1 for any σ > 0
        run(
            &mut rows,
            &test,
            "abl-weights",
            "no sparseness term".into(),
            Remix::builder().alpha(1e6),
            &mut stack,
        );
        // sparseness-only penalty off AND diversity neutralized is covered by
        // the custom voters below
        rows.extend(weight_term_ablation(&mut stack, &test));
    }
    if study == "all" || study == "threshold" {
        for threshold in [0.5f32, 0.4, 0.34, 0.01] {
            run(
                &mut rows,
                &test,
                "abl-threshold",
                format!("majority>{threshold}"),
                Remix::builder().majority_threshold(threshold),
                &mut stack,
            );
        }
    }
    if study == "all" || study == "xai-cost" {
        for samples in [2usize, 4, 8, 16] {
            let config = ExplainerConfig {
                budget: remix_xai::XaiBudget {
                    sg_samples: samples,
                    ..remix_xai::XaiBudget::default()
                },
                ..ExplainerConfig::default()
            };
            run(
                &mut rows,
                &test,
                "abl-xai-cost",
                format!("SG samples={samples}"),
                Remix::builder().explainer_config(config),
                &mut stack,
            );
        }
    }
    if study == "all" || study == "fast-path" {
        run(
            &mut rows,
            &test,
            "abl-fastpath",
            "fast path on".into(),
            Remix::builder(),
            &mut stack,
        );
        run(
            &mut rows,
            &test,
            "abl-fastpath",
            "fast path off".into(),
            Remix::builder().fast_path(false),
            &mut stack,
        );
    }
    println!("(the `std` column reports wall-clock seconds for the full test sweep)\n");
    print_table(&rows);
    write_csv("results/ablations.csv", &rows).expect("write results");
}

/// Custom weight-term ablations that need voters outside the builder's
/// parameter space: confidence-only and diversity-only voting.
fn weight_term_ablation(stack: &mut TrainedStack, test: &remix_data::Dataset) -> Vec<Row> {
    struct TermVoter {
        remix: Remix,
        use_conf: bool,
        use_div: bool,
    }
    impl Voter for TermVoter {
        fn vote(
            &mut self,
            ensemble: &mut remix_ensemble::TrainedEnsemble,
            image: &remix_tensor::Tensor,
        ) -> remix_ensemble::Prediction {
            let verdict = self.remix.predict(ensemble, image);
            if verdict.unanimous {
                return verdict.prediction;
            }
            let weights: Vec<f32> = verdict
                .details
                .iter()
                .map(|d| {
                    let c = if self.use_conf { d.confidence } else { 1.0 };
                    let delta = if self.use_div { d.diversity } else { 1.0 };
                    c * delta * (20.0 * d.sparseness).tanh()
                })
                .collect();
            let total: f32 = weights.iter().sum();
            let mut tally: std::collections::HashMap<usize, f32> = Default::default();
            for (d, w) in verdict.details.iter().zip(&weights) {
                *tally.entry(d.pred).or_insert(0.0) += w;
            }
            tally.into_iter().max_by(|a, b| a.1.total_cmp(&b.1)).map_or(
                remix_ensemble::Prediction::NoMajority,
                |(c, w)| {
                    if total > 0.0 && w > total / 2.0 {
                        remix_ensemble::Prediction::Decided(c)
                    } else {
                        remix_ensemble::Prediction::NoMajority
                    }
                },
            )
        }
        fn name(&self) -> String {
            "ReMIX-term".into()
        }
    }
    let mut rows = Vec::new();
    for (label, use_conf, use_div) in [
        ("no confidence term", false, true),
        ("no diversity term", true, false),
    ] {
        let mut voter = TermVoter {
            remix: Remix::builder().keep_feature_matrices(false).build(),
            use_conf,
            use_div,
        };
        let (ba, f1) = stack.evaluate_voter(&mut voter, test);
        rows.push(Row {
            panel: "abl-weights".into(),
            setting: label.into(),
            technique: "ReMIX".into(),
            ba,
            f1,
            std: 0.0,
        });
    }
    rows
}
