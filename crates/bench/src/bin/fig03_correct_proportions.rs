//! Fig. 3: proportion of test inputs correctly classified by 0/1/2/3 of the
//! best ensemble's constituent models, golden vs 30 % mislabelling.
//!
//! The paper's motivating observation: mislabelling inflates the 1-correct
//! fraction (from ~3 % to ~12 % on GTSRB), which simple majority voting can
//! never recover.

use rand::{rngs::StdRng, SeedableRng};
use remix_bench::{FaultSetting, Scale, TrainedStack};
use remix_data::SyntheticSpec;
use remix_ensemble::TrainedEnsemble;
use remix_faults::{pattern, FaultConfig, FaultType};

fn main() {
    let scale = Scale::from_env();
    let (train, test) = SyntheticSpec::gtsrb_like()
        .train_size(scale.train_size)
        .test_size(scale.test_size)
        .generate();
    let pat = pattern::extract(&train, 3, 5);
    let settings = [
        ("golden", FaultSetting::Single(FaultConfig::golden())),
        (
            "30% mislabelling",
            FaultSetting::Single(FaultConfig::new(FaultType::Mislabelling, 0.3)),
        ),
    ];
    println!("Fig. 3 — k-correct proportions of the best 3-model ensemble (gtsrb-like)\n");
    let mut rng = StdRng::seed_from_u64(1);
    let _ = &mut rng;
    for (label, setting) in settings {
        let mut stack = TrainedStack::train(&train, &pat, &setting, 3, &scale, 100);
        let mut hist = [0usize; 4];
        for (img, l) in test.iter() {
            let outputs = stack.ensemble.outputs(img);
            hist[TrainedEnsemble::count_correct_from_outputs(&outputs, l)] += 1;
        }
        let n = test.len() as f32;
        println!("{label:<18} ensemble {:?}", stack.ensemble.names());
        for (k, count) in hist.iter().enumerate() {
            let pct = *count as f32 / n * 100.0;
            println!(
                "  {k}-correct: {:>5.1}%  {}",
                pct,
                "#".repeat((pct / 2.0).round() as usize)
            );
        }
        println!();
    }
    println!("Paper: golden 1-correct ≈ 3%, 30% mislabelling 1-correct ≈ 12%.");
}
