//! Fig. 7 — the main resilience comparison: BA/F1 of ReMIX vs the seven
//! baselines across fault amounts, fault types, datasets, combined faults,
//! and image sizes.
//!
//! Usage: `fig07 [--panel a|b|c|d|e|f|g|h|i|j|all]` (default `all`).

use remix_bench::{
    print_table, run_technique_sweep, write_csv, FaultSetting, Row, Scale, Technique, TrainedStack,
};
use remix_data::{Dataset, SyntheticSpec};
use remix_faults::{pattern, ConfusionPattern, FaultConfig, FaultType};

fn sweep(amounts: &[f32], ty: FaultType) -> Vec<FaultSetting> {
    amounts
        .iter()
        .map(|&a| FaultSetting::Single(FaultConfig::new(ty, a)))
        .collect()
}

fn data_and_pattern(spec: SyntheticSpec, scale: &Scale) -> (Dataset, Dataset, ConfusionPattern) {
    let (train, test) = spec
        .train_size(scale.train_size)
        .test_size(scale.test_size)
        .generate();
    let pat = pattern::extract(&train, 3, 5);
    (train, test, pat)
}

fn main() {
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args().collect();
    let panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    let mut rows: Vec<Row> = Vec::new();
    let run = |p: &str| panel == "all" || panel == p;

    if run("a") || run("b") {
        let (train, test, pat) = data_and_pattern(SyntheticSpec::gtsrb_like(), &scale);
        if run("a") {
            // Fig 7a: GTSRB-like, mislabelling sweep, all techniques
            rows.extend(run_technique_sweep(
                "fig07a",
                &train,
                &test,
                &pat,
                &sweep(&scale.amounts, FaultType::Mislabelling),
                &Technique::ALL,
                3,
                &scale,
            ));
        }
        if run("b") {
            // Fig 7b: 1-correct fixed / 2-correct broken proportions at 30%
            rows.extend(panel_b(&train, &test, &pat, &scale));
        }
    }
    if run("c") {
        let (train, test, pat) = data_and_pattern(SyntheticSpec::gtsrb_like(), &scale);
        rows.extend(run_technique_sweep(
            "fig07c",
            &train,
            &test,
            &pat,
            &sweep(&scale.amounts, FaultType::Removal),
            &Technique::ALL,
            3,
            &scale,
        ));
    }
    if run("d") {
        let (train, test, pat) = data_and_pattern(SyntheticSpec::gtsrb_like(), &scale);
        rows.extend(run_technique_sweep(
            "fig07d",
            &train,
            &test,
            &pat,
            &sweep(&scale.amounts, FaultType::Repetition),
            &Technique::ALL,
            3,
            &scale,
        ));
    }
    if run("e") {
        let (train, test, pat) = data_and_pattern(SyntheticSpec::cifar_like(), &scale);
        rows.extend(run_technique_sweep(
            "fig07e",
            &train,
            &test,
            &pat,
            &sweep(&[0.0, 0.3], FaultType::Mislabelling),
            &Technique::ALL,
            3,
            &scale,
        ));
    }
    if run("f") {
        let (train, test, pat) = data_and_pattern(SyntheticSpec::pneumonia_like(), &scale);
        rows.extend(run_technique_sweep(
            "fig07f",
            &train,
            &test,
            &pat,
            &sweep(&[0.0, 0.3], FaultType::Mislabelling),
            &Technique::ALL,
            3,
            &scale,
        ));
    }
    if run("g") {
        let (train, test, pat) = data_and_pattern(SyntheticSpec::gtsrb_like(), &scale);
        let settings: Vec<FaultSetting> = scale
            .amounts
            .iter()
            .map(|&a| FaultSetting::Combined(a))
            .collect();
        rows.extend(run_technique_sweep(
            "fig07g",
            &train,
            &test,
            &pat,
            &settings,
            &Technique::ALL,
            3,
            &scale,
        ));
    }
    if run("h") {
        let (train, test, pat) = data_and_pattern(SyntheticSpec::pneumonia_like(), &scale);
        let settings: Vec<FaultSetting> = scale
            .amounts
            .iter()
            .map(|&a| FaultSetting::Combined(a))
            .collect();
        rows.extend(run_technique_sweep(
            "fig07h",
            &train,
            &test,
            &pat,
            &settings,
            &Technique::ALL,
            3,
            &scale,
        ));
    }
    if run("i") || run("j") {
        // image-size effect: 16 px vs 32 px CIFAR-like, ReMIX vs D-WMaj
        for (p, ty) in [
            ("fig07i", FaultType::Mislabelling),
            ("fig07j", FaultType::Removal),
        ] {
            if !run(&p[5..]) {
                continue;
            }
            for size in [16usize, 32] {
                let (train, test, pat) = data_and_pattern(
                    SyntheticSpec::cifar_like().image_size(size),
                    &Scale {
                        train_size: scale.train_size.min(600),
                        test_size: scale.test_size.min(120),
                        ..scale.clone()
                    },
                );
                let mut sub = run_technique_sweep(
                    &format!("{p}-{size}px"),
                    &train,
                    &test,
                    &pat,
                    &sweep(&[0.0, 0.3], ty),
                    &[Technique::DWMaj, Technique::Remix],
                    3,
                    &scale,
                );
                rows.append(&mut sub);
            }
        }
    }
    print_table(&rows);
    write_csv(format!("results/fig07_{panel}.csv"), &rows).expect("write results");
}

/// Fig. 7b: of the 1-correct cases, how many does each weighted technique
/// fix; of the 2-correct cases, how many does it break (vs UMaj).
fn panel_b(train: &Dataset, test: &Dataset, pat: &ConfusionPattern, scale: &Scale) -> Vec<Row> {
    use remix_core::{Remix, RemixVoter};
    use remix_ensemble::{StackedDynamic, StaticWeighted, UniformAverage, Voter};
    let setting = FaultSetting::Single(FaultConfig::new(FaultType::Mislabelling, 0.3));
    let mut stack = TrainedStack::train(train, pat, &setting, 3, scale, 100);
    let mut voters: Vec<Box<dyn Voter>> = vec![
        Box::new(UniformAverage),
        Box::new(StaticWeighted::fit(&mut stack.ensemble, &stack.validation)),
        Box::new(StackedDynamic::fit(&mut stack.ensemble, &stack.validation)),
        Box::new(RemixVoter::new(Remix::builder().build())),
    ];
    let mut rows = Vec::new();
    for voter in &mut voters {
        let (mut fixed1, mut total1, mut broke2, mut total2) = (0, 0, 0, 0);
        for (img, l) in test.iter() {
            let k = stack.ensemble.count_correct(img, l);
            if k == 1 {
                total1 += 1;
                if voter.vote(&mut stack.ensemble, img).is_correct(l) {
                    fixed1 += 1;
                }
            } else if k == 2 {
                total2 += 1;
                if !voter.vote(&mut stack.ensemble, img).is_correct(l) {
                    broke2 += 1;
                }
            }
        }
        rows.push(Row {
            panel: "fig07b".into(),
            setting: "1-correct fixed".into(),
            technique: voter.name(),
            ba: fixed1 as f32 / total1.max(1) as f32,
            f1: 0.0,
            std: 0.0,
        });
        rows.push(Row {
            panel: "fig07b".into(),
            setting: "2-correct broken".into(),
            technique: voter.name(),
            ba: broke2 as f32 / total2.max(1) as f32,
            f1: 0.0,
            std: 0.0,
        });
    }
    rows
}
