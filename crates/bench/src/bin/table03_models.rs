//! Table III: the nine neural-network architectures, with the scaled
//! parameter counts of this reproduction.

use rand::{rngs::StdRng, SeedableRng};
use remix_nn::{zoo, Arch, InputSpec, Layer};

fn main() {
    println!("Table III — neural network architectures (scaled reproduction)\n");
    println!(
        "{:<18} {:>9} {:>8} {:<45}",
        "Name", "Params", "Layers", "Architecture Summary"
    );
    let spec = InputSpec {
        channels: 3,
        size: 16,
        num_classes: 43,
    };
    let mut rng = StdRng::seed_from_u64(0);
    for arch in Arch::ALL {
        let net = zoo::build(arch, spec, &mut rng);
        println!(
            "{:<18} {:>9} {:>8} {:<45}",
            arch.name(),
            net.param_count(),
            net.layer_names().len(),
            arch.summary()
        );
    }
    println!("\n(Parameter counts are for 3x16x16 inputs, 43 classes — the GTSRB-like spec.)");
}
