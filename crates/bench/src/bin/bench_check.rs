//! CI perf-regression gate: compares fresh bench records (gemm, inference,
//! serve, xai_sched, swap, drift) against the committed baselines and exits
//! nonzero
//! on a >20 % wall-time regression, any bitwise-verdict divergence, or a
//! dropped request during hot swaps. See `remix_bench::check` for the policy
//! (within-run ratios, so the gate is robust to CI machine speed).
//!
//! ```text
//! bench_check [--baseline-dir DIR] [--fresh-dir DIR] [--tolerance F] [--self-test]
//! ```
//!
//! `--self-test` skips the fresh records entirely: it doctors copies of the
//! committed baselines (a synthetic 50 % wall-time regression, then a flipped
//! verdict flag) and exits nonzero unless the gate catches both — proving the
//! gate can fail before trusting it to pass.

use remix_bench::check::{
    check_drift, check_gemm, check_inference, check_serve, check_swap, check_xai_sched,
    flip_verdict_flags, scale_speedups, GateReport, DEFAULT_TOLERANCE,
};
use serde::Value;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn load(path: &Path) -> Result<Value, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}

fn print_report(report: &GateReport) {
    for line in &report.checks {
        println!("{line}");
    }
    for line in &report.failures {
        println!("{line}");
    }
}

/// Doctors a baseline record and returns true iff the gate catches it.
fn self_test_record(
    name: &str,
    baseline: &Value,
    gate: impl Fn(&Value, &Value) -> GateReport,
) -> bool {
    let mut ok = true;
    let clean = gate(baseline, baseline);
    if !clean.passed() {
        println!("self-test FAIL: {name} baseline does not pass against itself:");
        print_report(&clean);
        ok = false;
    }
    let mut slow = baseline.clone();
    scale_speedups(&mut slow, 1.0 / 1.5); // 50 % synthetic wall regression
    if gate(baseline, &slow).passed() {
        println!("self-test FAIL: {name} gate missed a 50 % synthetic regression");
        ok = false;
    }
    let mut diverged = baseline.clone();
    flip_verdict_flags(&mut diverged);
    if gate(baseline, &diverged).passed() {
        println!("self-test FAIL: {name} gate missed a verdict divergence");
        ok = false;
    }
    if ok {
        println!("self-test ok: {name} gate passes clean, catches regression + divergence");
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let baseline_dir =
        PathBuf::from(flag("--baseline-dir").unwrap_or_else(|| "crates/bench/baselines".into()));
    let fresh_dir = PathBuf::from(flag("--fresh-dir").unwrap_or_else(|| "results".into()));
    let tolerance: f64 = match flag("--tolerance").map(|t| t.parse()) {
        None => DEFAULT_TOLERANCE,
        Some(Ok(t)) => t,
        Some(Err(e)) => {
            eprintln!("error: --tolerance: {e}");
            return ExitCode::FAILURE;
        }
    };
    let self_test = args.iter().any(|a| a == "--self-test");

    let (base_gemm, base_inference, base_serve, base_xai_sched, base_swap, base_drift) = match (
        load(&baseline_dir.join("bench_gemm.json")),
        load(&baseline_dir.join("bench_inference.json")),
        load(&baseline_dir.join("bench_serve.json")),
        load(&baseline_dir.join("bench_xai_sched.json")),
        load(&baseline_dir.join("bench_swap.json")),
        load(&baseline_dir.join("bench_drift.json")),
    ) {
        (Ok(g), Ok(i), Ok(s), Ok(x), Ok(w), Ok(d)) => (g, i, s, x, w, d),
        (g, i, s, x, w, d) => {
            for err in [g.err(), i.err(), s.err(), x.err(), w.err(), d.err()]
                .into_iter()
                .flatten()
            {
                eprintln!("error: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    if self_test {
        let gemm_ok =
            self_test_record("bench_gemm", &base_gemm, |b, f| check_gemm(b, f, tolerance));
        let inference_ok = self_test_record("bench_inference", &base_inference, |b, f| {
            check_inference(b, f, tolerance)
        });
        let serve_ok = self_test_record("bench_serve", &base_serve, |b, f| {
            check_serve(b, f, tolerance)
        });
        let xai_sched_ok = self_test_record("bench_xai_sched", &base_xai_sched, |b, f| {
            check_xai_sched(b, f, tolerance)
        });
        let swap_ok =
            self_test_record("bench_swap", &base_swap, |b, f| check_swap(b, f, tolerance));
        let drift_ok = self_test_record("bench_drift", &base_drift, |b, f| {
            check_drift(b, f, tolerance)
        });
        return if gemm_ok && inference_ok && serve_ok && xai_sched_ok && swap_ok && drift_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let (fresh_gemm, fresh_inference, fresh_serve, fresh_xai_sched, fresh_swap, fresh_drift) =
        match (
            load(&fresh_dir.join("bench_gemm.json")),
            load(&fresh_dir.join("bench_inference.json")),
            load(&fresh_dir.join("bench_serve.json")),
            load(&fresh_dir.join("bench_xai_sched.json")),
            load(&fresh_dir.join("bench_swap.json")),
            load(&fresh_dir.join("bench_drift.json")),
        ) {
            (Ok(g), Ok(i), Ok(s), Ok(x), Ok(w), Ok(d)) => (g, i, s, x, w, d),
            (g, i, s, x, w, d) => {
                for err in [g.err(), i.err(), s.err(), x.err(), w.err(), d.err()]
                    .into_iter()
                    .flatten()
                {
                    eprintln!("error: {err}");
                }
                return ExitCode::FAILURE;
            }
        };

    let mut report = check_gemm(&base_gemm, &fresh_gemm, tolerance);
    report.merge(check_inference(
        &base_inference,
        &fresh_inference,
        tolerance,
    ));
    report.merge(check_serve(&base_serve, &fresh_serve, tolerance));
    report.merge(check_xai_sched(
        &base_xai_sched,
        &fresh_xai_sched,
        tolerance,
    ));
    report.merge(check_swap(&base_swap, &fresh_swap, tolerance));
    report.merge(check_drift(&base_drift, &fresh_drift, tolerance));
    print_report(&report);
    if report.passed() {
        println!(
            "bench_check: {} checks passed (tolerance {:.0} %)",
            report.checks.len(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_check: {} of {} checks FAILED",
            report.failures.len(),
            report.checks.len() + report.failures.len()
        );
        ExitCode::FAILURE
    }
}
