//! Table II: the dataset inventory — our synthetic analogues with their
//! sizes, class counts and evaluation metrics.

use remix_bench::Scale;
use remix_data::SyntheticSpec;

fn main() {
    let scale = Scale::from_env();
    println!("Table II — datasets (synthetic analogues; REMIX_SCALE sizes)\n");
    println!(
        "{:<16} {:>8} {:>7} {:>8} {:>8} {:>10} {:<7}",
        "Name", "Train", "Test", "Classes", "Channels", "Image", "Metric"
    );
    let spec_rows = [
        ("cifar-like", SyntheticSpec::cifar_like(), "BA"),
        ("gtsrb-like", SyntheticSpec::gtsrb_like(), "BA"),
        ("pneumonia-like", SyntheticSpec::pneumonia_like(), "F1"),
        ("mnist-like", SyntheticSpec::mnist_like(), "BA"),
    ];
    for (name, spec, metric) in spec_rows {
        let (train, test) = spec
            .train_size(scale.train_size.min(600))
            .test_size(scale.test_size.min(200))
            .generate();
        println!(
            "{:<16} {:>8} {:>7} {:>8} {:>8} {:>7}x{:<3} {:<7}",
            name,
            train.len(),
            test.len(),
            train.num_classes,
            train.channels,
            train.size,
            train.size,
            metric
        );
    }
    println!("\nClass balance check (pneumonia-like is imbalanced like the original):");
    let (p, _) = SyntheticSpec::pneumonia_like().train_size(400).generate();
    println!("  pneumonia-like class counts: {:?}", p.class_counts());
    let (g, _) = SyntheticSpec::gtsrb_like().train_size(430).generate();
    let counts = g.class_counts();
    println!(
        "  gtsrb-like classes covered: {}/43 (min {} max {} per class)",
        counts.iter().filter(|&&c| c > 0).count(),
        counts.iter().min().unwrap(),
        counts.iter().max().unwrap()
    );
}
