//! Fig. 8: average per-input runtime overhead of every technique relative to
//! the best individual model, plus ReMIX's stage breakdown (the paper finds
//! XAI extraction dominating at ~67 % of the overhead, and ReMIX ≈ 1.15× the
//! cost of D-WMaj).

use rand::{rngs::StdRng, SeedableRng};
use remix_bench::{FaultSetting, Scale, TrainedStack};
use remix_core::{Remix, RemixVoter, StageTimings};
use remix_data::SyntheticSpec;
use remix_ensemble::{
    BestIndividual, StackedDynamic, StaticWeighted, UniformAverage, UniformMajority, Voter,
};
use remix_faults::{pattern, FaultConfig, FaultType};
use std::time::{Duration, Instant};

fn main() {
    let scale = Scale::from_env();
    let (train, test) = SyntheticSpec::gtsrb_like()
        .train_size(scale.train_size)
        .test_size(scale.test_size.min(120))
        .generate();
    let pat = pattern::extract(&train, 3, 5);
    let setting = FaultSetting::Single(FaultConfig::new(FaultType::Mislabelling, 0.3));
    let mut stack = TrainedStack::train(&train, &pat, &setting, 3, &scale, 100);
    let mut rng = StdRng::seed_from_u64(1);
    let _ = &mut rng;
    // best-individual baseline time
    let mut best = BestIndividual::fit(&mut stack.ensemble, &stack.validation);
    let measure = |name: &str, f: &mut dyn FnMut(&remix_tensor::Tensor)| {
        let mut total = Duration::ZERO;
        let mut worst = Duration::ZERO;
        for img in &test.images {
            let t = Instant::now();
            f(img);
            let dt = t.elapsed();
            total += dt;
            worst = worst.max(dt);
        }
        let avg = total / test.len() as u32;
        (name.to_string(), avg, worst)
    };
    let mut results = Vec::new();
    {
        let ens = &mut stack.ensemble;
        results.push(measure("Best", &mut |img| {
            best.vote(ens, img);
        }));
    }
    {
        let ens = &mut stack.ensemble;
        results.push(measure("UMaj", &mut |img| {
            UniformMajority.vote(ens, img);
        }));
        results.push(measure("UAvg", &mut |img| {
            UniformAverage.vote(ens, img);
        }));
    }
    let mut swmaj = StaticWeighted::fit(&mut stack.ensemble, &stack.validation);
    {
        let ens = &mut stack.ensemble;
        results.push(measure("S-WMaj", &mut |img| {
            swmaj.vote(ens, img);
        }));
    }
    let mut dwmaj = StackedDynamic::fit(&mut stack.ensemble, &stack.validation);
    {
        let ens = &mut stack.ensemble;
        results.push(measure("D-WMaj", &mut |img| {
            dwmaj.vote(ens, img);
        }));
    }
    {
        let ens = &mut stack.bagged;
        results.push(measure("Bagging", &mut |img| {
            UniformMajority.vote(ens, img);
        }));
    }
    {
        let (ens, voter) = (&mut stack.boosted.0, &mut stack.boosted.1);
        results.push(measure("Boosting", &mut |img| {
            voter.vote(ens, img);
        }));
    }
    let mut remix_voter = RemixVoter::new(Remix::builder().build());
    {
        let ens = &mut stack.ensemble;
        results.push(measure("ReMIX", &mut |img| {
            remix_voter.vote(ens, img);
        }));
    }
    let base = results[0].1;
    println!(
        "Fig. 8 — per-input runtime (avg over {} inputs)\n",
        test.len()
    );
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "technique", "avg", "worst", "x Best"
    );
    for (name, avg, worst) in &results {
        println!(
            "{:<10} {:>12.3?} {:>12.3?} {:>9.2}x",
            name,
            avg,
            worst,
            avg.as_secs_f64() / base.as_secs_f64()
        );
    }
    // ReMIX stage breakdown over disagreement inputs, sequential vs parallel
    for threads in [1usize, 0] {
        let remix = Remix::builder().threads(threads).build();
        let mut stage = StageTimings::default();
        let mut disagreements = 0u32;
        let wall = Instant::now();
        for img in &test.images {
            let v = remix.predict(&mut stack.ensemble, img);
            if !v.unanimous {
                stage.prediction += v.timings.prediction;
                stage.xai += v.timings.xai;
                stage.diversity += v.timings.diversity;
                stage.weighting += v.timings.weighting;
                stage.threads = v.timings.threads;
                disagreements += 1;
            }
        }
        let wall = wall.elapsed();
        if disagreements == 0 {
            continue;
        }
        let total = stage.total().as_secs_f64();
        println!(
            "\nReMIX stage breakdown over {disagreements} disagreement inputs \
             ({} worker thread{}, wall {:.3?}):",
            stage.threads,
            if stage.threads == 1 { "" } else { "s" },
            wall
        );
        println!(
            "  ensemble prediction: {:>5.1}%  {:>10.3?}   (paper: ~15%)",
            stage.prediction.as_secs_f64() / total * 100.0,
            stage.prediction
        );
        println!(
            "  XAI extraction:      {:>5.1}%  {:>10.3?}   (paper: ~67%)",
            stage.xai.as_secs_f64() / total * 100.0,
            stage.xai
        );
        println!(
            "  pairwise diversity:  {:>5.1}%  {:>10.3?}",
            stage.diversity.as_secs_f64() / total * 100.0,
            stage.diversity
        );
        println!(
            "  weights + voting:    {:>5.1}%  {:>10.3?}   (paper: ~18%)",
            stage.weighting.as_secs_f64() / total * 100.0,
            stage.weighting
        );
    }
    println!("\nPaper: ReMIX ≈ 1.15× D-WMaj, ≈ 4.5× UMaj/UAvg/S-WMaj/Bagging, ≈ 6× Best.");
}
