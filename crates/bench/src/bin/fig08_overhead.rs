//! Fig. 8: average per-input runtime overhead of every technique relative to
//! the best individual model, plus ReMIX's stage breakdown (the paper finds
//! XAI extraction dominating at ~67 % of the overhead, and ReMIX ≈ 1.15× the
//! cost of D-WMaj).
//!
//! The runner additionally benchmarks the batched XAI inference engine
//! against the per-sample path (`--threads N` pins the worker count, default
//! auto), asserts the verdicts are bit-identical, and writes a
//! machine-readable record to `results/bench_inference.json`. A verdict
//! mismatch exits nonzero so CI can gate on it.

use rand::{rngs::StdRng, SeedableRng};
use remix_bench::{FaultSetting, Scale, TrainedStack};
use remix_core::{Remix, RemixVerdict, RemixVoter, StageTimings};
use remix_data::SyntheticSpec;
use remix_ensemble::{
    BestIndividual, StackedDynamic, StaticWeighted, UniformAverage, UniformMajority, Voter,
};
use remix_faults::{pattern, FaultConfig, FaultType};
use std::io::Write;
use std::time::{Duration, Instant};

/// PR 1 recorded this single-thread quick-scale wall for the breakdown loop;
/// the batched engine is benchmarked against it.
const PR1_BASELINE_SECS: f64 = 2.231;

/// Wall seconds of the `TrainedStack::train` call below at quick scale on
/// one thread, recorded at the commit preceding the blocked-GEMM batched
/// training step (the faster of two baseline runs, so the speedup claim is
/// conservative). The training wall measured by this runner is compared
/// against it.
const SEED_STACK_TRAIN_SECS: f64 = 61.843;

/// One batched-vs-per-sample measurement: stage sums over the disagreement
/// inputs, total wall, and the full verdict list for bitwise comparison.
struct EngineRun {
    batch_size: usize,
    wall: Duration,
    stage: StageTimings,
    disagreements: u32,
    verdicts: Vec<RemixVerdict>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let trace_path: Option<std::path::PathBuf> =
        args.iter().position(|a| a == "--trace").map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .map_or_else(
                    || std::path::PathBuf::from("results/trace_fig08.json"),
                    std::path::PathBuf::from,
                )
        });
    let scale = Scale::from_env();
    let (train, test) = SyntheticSpec::gtsrb_like()
        .train_size(scale.train_size)
        .test_size(scale.test_size.min(120))
        .generate();
    let pat = pattern::extract(&train, 3, 5);
    let setting = FaultSetting::Single(FaultConfig::new(FaultType::Mislabelling, 0.3));
    let train_start = Instant::now();
    let mut stack = TrainedStack::train(&train, &pat, &setting, 3, &scale, 100);
    let stack_train_secs = train_start.elapsed().as_secs_f64();
    println!(
        "Stack training: {:.3}s wall (pre-GEMM-blocking baseline {:.3}s, {:.2}x)\n",
        stack_train_secs,
        SEED_STACK_TRAIN_SECS,
        SEED_STACK_TRAIN_SECS / stack_train_secs
    );
    let mut rng = StdRng::seed_from_u64(1);
    let _ = &mut rng;
    // best-individual baseline time
    let mut best = BestIndividual::fit(&mut stack.ensemble, &stack.validation);
    let measure = |name: &str, f: &mut dyn FnMut(&remix_tensor::Tensor)| {
        let mut total = Duration::ZERO;
        let mut worst = Duration::ZERO;
        for img in &test.images {
            let t = Instant::now();
            f(img);
            let dt = t.elapsed();
            total += dt;
            worst = worst.max(dt);
        }
        let avg = total / test.len() as u32;
        (name.to_string(), avg, worst)
    };
    let mut results = Vec::new();
    {
        let ens = &mut stack.ensemble;
        results.push(measure("Best", &mut |img| {
            best.vote(ens, img);
        }));
    }
    {
        let ens = &mut stack.ensemble;
        results.push(measure("UMaj", &mut |img| {
            UniformMajority.vote(ens, img);
        }));
        results.push(measure("UAvg", &mut |img| {
            UniformAverage.vote(ens, img);
        }));
    }
    let mut swmaj = StaticWeighted::fit(&mut stack.ensemble, &stack.validation);
    {
        let ens = &mut stack.ensemble;
        results.push(measure("S-WMaj", &mut |img| {
            swmaj.vote(ens, img);
        }));
    }
    let mut dwmaj = StackedDynamic::fit(&mut stack.ensemble, &stack.validation);
    {
        let ens = &mut stack.ensemble;
        results.push(measure("D-WMaj", &mut |img| {
            dwmaj.vote(ens, img);
        }));
    }
    {
        let ens = &mut stack.bagged;
        results.push(measure("Bagging", &mut |img| {
            UniformMajority.vote(ens, img);
        }));
    }
    {
        let (ens, voter) = (&mut stack.boosted.0, &mut stack.boosted.1);
        results.push(measure("Boosting", &mut |img| {
            voter.vote(ens, img);
        }));
    }
    let mut remix_voter = RemixVoter::new(Remix::builder().build());
    {
        let ens = &mut stack.ensemble;
        results.push(measure("ReMIX", &mut |img| {
            remix_voter.vote(ens, img);
        }));
    }
    let base = results[0].1;
    println!(
        "Fig. 8 — per-input runtime (avg over {} inputs)\n",
        test.len()
    );
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "technique", "avg", "worst", "x Best"
    );
    for (name, avg, worst) in &results {
        println!(
            "{:<10} {:>12.3?} {:>12.3?} {:>9.2}x",
            name,
            avg,
            worst,
            avg.as_secs_f64() / base.as_secs_f64()
        );
    }
    // ReMIX stage breakdown over disagreement inputs: the per-sample XAI
    // path (batch_size 1) against the batched inference engine (default 32),
    // at the same thread count.
    let runs: Vec<EngineRun> = [1usize, 32]
        .into_iter()
        .map(|batch_size| {
            let remix = Remix::builder()
                .threads(threads)
                .xai_batch_size(batch_size)
                .build();
            let mut stage = StageTimings::default();
            let mut disagreements = 0u32;
            let mut verdicts = Vec::with_capacity(test.len());
            let wall = Instant::now();
            for img in &test.images {
                let v = remix.predict(&mut stack.ensemble, img);
                if !v.unanimous {
                    stage.prediction += v.timings.prediction;
                    stage.xai += v.timings.xai;
                    stage.diversity += v.timings.diversity;
                    stage.weighting += v.timings.weighting;
                    stage.threads = v.timings.threads;
                    disagreements += 1;
                }
                verdicts.push(v);
            }
            let wall = wall.elapsed();
            print_breakdown(batch_size, &stage, disagreements, wall);
            EngineRun {
                batch_size,
                wall,
                stage,
                disagreements,
                verdicts,
            }
        })
        .collect();
    let per_sample = &runs[0];
    let batched = &runs[1];
    let verdicts_identical = per_sample
        .verdicts
        .iter()
        .zip(&batched.verdicts)
        .all(|(a, b)| verdicts_bit_equal(a, b));
    let speedup = per_sample.wall.as_secs_f64() / batched.wall.as_secs_f64();
    println!(
        "\nBatched engine (batch 32) vs per-sample: {:.3?} vs {:.3?} ({speedup:.2}x), \
         verdicts {}",
        batched.wall,
        per_sample.wall,
        if verdicts_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    write_bench_json(
        per_sample,
        batched,
        speedup,
        verdicts_identical,
        stack_train_secs,
        &test,
    )
    .expect("write results/bench_inference.json");
    println!("Record written to results/bench_inference.json");
    println!("\nPaper: ReMIX ≈ 1.15× D-WMaj, ≈ 4.5× UMaj/UAvg/S-WMaj/Bagging, ≈ 6× Best.");
    if !verdicts_identical {
        eprintln!("ERROR: batched verdicts diverged from the per-sample path");
        std::process::exit(1);
    }
    if let Some(path) = trace_path {
        run_traced(&mut stack, &test, threads, batched, &path);
    }
}

/// Reruns the batched engine with tracing enabled and gates on the tracing
/// contracts: (1) verdicts are bit-identical to the untraced run, (2) the
/// span tree's per-stage totals agree with the legacy `StageTimings` sums
/// within 1 %. Writes the trace record to `path` and prints the tree.
fn run_traced(
    stack: &mut TrainedStack,
    test: &remix_data::Dataset,
    threads: usize,
    untraced: &EngineRun,
    path: &std::path::Path,
) {
    remix_trace::reset();
    remix_trace::set_enabled(true);
    let remix = Remix::builder()
        .threads(threads)
        .xai_batch_size(untraced.batch_size)
        .build();
    // Accumulate legacy timings over ALL inputs (fast-path verdicts carry a
    // prediction time and zero elsewhere), matching what the span registry
    // sees: one "prediction" stage span per input, XAI/diversity/weighting
    // spans only on disagreements.
    let mut stage = StageTimings::default();
    let mut verdicts = Vec::with_capacity(test.len());
    for img in &test.images {
        let v = remix.predict(&mut stack.ensemble, img);
        stage.prediction += v.timings.prediction;
        stage.xai += v.timings.xai;
        stage.diversity += v.timings.diversity;
        stage.weighting += v.timings.weighting;
        verdicts.push(v);
    }
    remix_trace::set_enabled(false);
    let report = remix_trace::snapshot();
    let traced_identical = untraced
        .verdicts
        .iter()
        .zip(&verdicts)
        .all(|(a, b)| verdicts_bit_equal(a, b));
    if !traced_identical {
        eprintln!("ERROR: verdicts with tracing enabled diverged from the untraced run");
        std::process::exit(1);
    }
    let predict = report
        .spans
        .iter()
        .find(|n| n.name == "predict")
        .unwrap_or_else(|| {
            eprintln!("ERROR: traced run recorded no `predict` span");
            std::process::exit(1);
        });
    println!(
        "\nTraced rerun (batch {}): verdicts bit-identical to untraced run",
        untraced.batch_size
    );
    let mut stage_ok = true;
    for (name, legacy) in [
        ("prediction", stage.prediction),
        ("xai", stage.xai),
        ("diversity", stage.diversity),
        ("weighting", stage.weighting),
    ] {
        let tree_ns = predict
            .children
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.total_ns);
        let legacy_ns = legacy.as_nanos() as u64;
        let diff = tree_ns.abs_diff(legacy_ns);
        // 1% tolerance per the acceptance criteria; in practice the values
        // are exactly equal because StageSpan records the duration it returns.
        let ok = diff as f64 <= 0.01 * legacy_ns.max(1) as f64;
        println!(
            "  stage {name:<10} span tree {tree_ns:>14} ns   legacy {legacy_ns:>14} ns   {}",
            if ok { "agree" } else { "DISAGREE" }
        );
        stage_ok &= ok;
    }
    if !stage_ok {
        eprintln!("ERROR: span-tree stage totals disagree with legacy StageTimings by >1%");
        std::process::exit(1);
    }
    print!("\n{}", report.render_tree());
    report.write(path).expect("write trace record");
    println!("Trace written to {}", path.display());
}

fn print_breakdown(batch_size: usize, stage: &StageTimings, disagreements: u32, wall: Duration) {
    if disagreements == 0 {
        return;
    }
    let total = stage.total().as_secs_f64();
    println!(
        "\nReMIX stage breakdown over {disagreements} disagreement inputs \
         ({} worker thread{}, XAI batch {batch_size}, wall {:.3?}):",
        stage.threads,
        if stage.threads == 1 { "" } else { "s" },
        wall
    );
    println!(
        "  ensemble prediction: {:>5.1}%  {:>10.3?}   (paper: ~15%)",
        stage.prediction.as_secs_f64() / total * 100.0,
        stage.prediction
    );
    println!(
        "  XAI extraction:      {:>5.1}%  {:>10.3?}   (paper: ~67%)",
        stage.xai.as_secs_f64() / total * 100.0,
        stage.xai
    );
    println!(
        "  pairwise diversity:  {:>5.1}%  {:>10.3?}",
        stage.diversity.as_secs_f64() / total * 100.0,
        stage.diversity
    );
    println!(
        "  weights + voting:    {:>5.1}%  {:>10.3?}   (paper: ~18%)",
        stage.weighting.as_secs_f64() / total * 100.0,
        stage.weighting
    );
}

/// Bitwise verdict equality: decision, fast-path flag, and every per-model
/// statistic compared by bit pattern (timings excluded — they are the one
/// thing batching is supposed to change).
fn verdicts_bit_equal(a: &RemixVerdict, b: &RemixVerdict) -> bool {
    a.prediction == b.prediction
        && a.unanimous == b.unanimous
        && a.details.len() == b.details.len()
        && a.details.iter().zip(&b.details).all(|(x, y)| {
            x.name == y.name
                && x.pred == y.pred
                && x.confidence.to_bits() == y.confidence.to_bits()
                && x.diversity.to_bits() == y.diversity.to_bits()
                && x.sparseness.to_bits() == y.sparseness.to_bits()
                && x.weight.to_bits() == y.weight.to_bits()
        })
}

/// Hand-formatted JSON record (the vendored serde_json has no pretty
/// printer) of the per-sample vs batched engine comparison.
fn write_bench_json(
    per_sample: &EngineRun,
    batched: &EngineRun,
    speedup: f64,
    verdicts_identical: bool,
    stack_train_secs: f64,
    test: &remix_data::Dataset,
) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let mut f = std::fs::File::create("results/bench_inference.json")?;
    let scale = match std::env::var("REMIX_SCALE").as_deref() {
        Ok("paper") => "paper",
        _ => "quick",
    };
    let engine_json = |run: &EngineRun| {
        format!(
            "{{\n      \"batch_size\": {},\n      \"wall_secs\": {:.6},\n      \
             \"stages_secs\": {{\n        \"prediction\": {:.6},\n        \
             \"xai\": {:.6},\n        \"diversity\": {:.6},\n        \
             \"weighting\": {:.6}\n      }},\n      \
             \"explanations_per_sec\": {:.3}\n    }}",
            run.batch_size,
            run.wall.as_secs_f64(),
            run.stage.prediction.as_secs_f64(),
            run.stage.xai.as_secs_f64(),
            run.stage.diversity.as_secs_f64(),
            run.stage.weighting.as_secs_f64(),
            // one explanation per (disagreement input × constituent model)
            f64::from(run.disagreements * 3) / run.stage.xai.as_secs_f64().max(1e-9),
        )
    };
    writeln!(
        f,
        "{{\n  \"benchmark\": \"fig08_overhead\",\n  \"scale\": \"{scale}\",\n  \
         \"inputs\": {},\n  \"disagreement_inputs\": {},\n  \"threads\": {},\n  \
         \"pr1_baseline_wall_secs\": {PR1_BASELINE_SECS},\n  \
         \"stack_train_secs\": {stack_train_secs:.6},\n  \
         \"seed_stack_train_secs\": {SEED_STACK_TRAIN_SECS},\n  \
         \"stack_train_speedup_vs_seed\": {:.3},\n  \
         \"engines\": {{\n    \"per_sample\": {},\n    \"batched\": {}\n  }},\n  \
         \"speedup_batched_vs_per_sample\": {speedup:.3},\n  \
         \"speedup_batched_vs_pr1_baseline\": {:.3},\n  \
         \"verdicts_identical\": {verdicts_identical}\n}}",
        test.len(),
        batched.disagreements,
        batched.stage.threads,
        SEED_STACK_TRAIN_SECS / stack_train_secs,
        engine_json(per_sample),
        engine_json(batched),
        PR1_BASELINE_SECS / batched.wall.as_secs_f64(),
    )
}
