//! Result rows, console tables and CSV emission.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// One measured cell of a figure/table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Figure/panel id (e.g. `"fig07a"`).
    pub panel: String,
    /// Fault setting label (e.g. `"30% mislabelling"`).
    pub setting: String,
    /// Technique label (e.g. `"ReMIX"`).
    pub technique: String,
    /// Mean balanced accuracy.
    pub ba: f32,
    /// Mean F1 (0 for non-binary datasets).
    pub f1: f32,
    /// Standard deviation of BA across seeds.
    pub std: f32,
}

/// Prints rows as an aligned console table, grouped by setting.
pub fn print_table(rows: &[Row]) {
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    println!(
        "{:<8} {:<22} {:<10} {:>7} {:>7} {:>7}",
        "panel", "setting", "technique", "BA", "F1", "std"
    );
    let mut last_setting = String::new();
    for r in rows {
        if r.setting != last_setting && !last_setting.is_empty() {
            println!("{}", "-".repeat(66));
        }
        last_setting = r.setting.clone();
        println!(
            "{:<8} {:<22} {:<10} {:>7.3} {:>7.3} {:>7.3}",
            r.panel, r.setting, r.technique, r.ba, r.f1, r.std
        );
    }
}

/// Writes rows as CSV under `results/`, creating the directory if needed.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_csv(path: impl AsRef<Path>, rows: &[Row]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "panel,setting,technique,ba,f1,std")?;
    for r in rows {
        writeln!(
            f,
            "{},{},{},{:.4},{:.4},{:.4}",
            r.panel, r.setting, r.technique, r.ba, r.f1, r.std
        )?;
    }
    eprintln!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let rows = vec![Row {
            panel: "t".into(),
            setting: "golden".into(),
            technique: "UMaj".into(),
            ba: 0.9,
            f1: 0.0,
            std: 0.01,
        }];
        let path = std::env::temp_dir().join("remix_report_test.csv");
        write_csv(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("panel,setting"));
        assert!(text.contains("UMaj"));
        std::fs::remove_file(path).ok();
    }
}
