//! Criterion micro-benches of the substrate components: tensor algebra,
//! convolution lowering, model forward/backward, fault injection, and
//! dataset generation. These back the engineering claims in DESIGN.md (e.g.
//! im2col-based convolution being the training hot path) and give a
//! regression baseline for future optimization work.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use remix_data::SyntheticSpec;
use remix_faults::{inject, ConfusionPattern, FaultConfig, FaultType};
use remix_nn::{cross_entropy, zoo, Arch, InputSpec, Layer, Mode, Model};
use remix_tensor::{im2col, Conv2dGeometry, Tensor};

fn tensor_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Tensor::rand_uniform(&[64, 64], 0.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform(&[64, 64], 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("tensor");
    group.bench_function("matmul_64x64", |bch| bch.iter(|| a.matmul(&b).unwrap()));
    group.bench_function("softmax_4096", |bch| {
        let t = a.flatten();
        bch.iter(|| t.softmax())
    });
    let geo = Conv2dGeometry {
        in_channels: 8,
        in_h: 16,
        in_w: 16,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let img = Tensor::rand_uniform(&[8, 16, 16], 0.0, 1.0, &mut rng);
    group.bench_function("im2col_8x16x16_k3", |bch| {
        bch.iter(|| im2col(&img, &geo).unwrap())
    });
    group.finish();
}

fn model_passes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let spec = InputSpec {
        channels: 3,
        size: 16,
        num_classes: 43,
    };
    let img = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("model");
    group.sample_size(20);
    for arch in [Arch::ConvNet, Arch::ResNet50, Arch::MobileNet] {
        let mut model = Model::named(zoo::build(arch, spec, &mut rng), spec, arch.name());
        group.bench_function(format!("{arch}_forward"), |bch| {
            bch.iter(|| model.predict_proba(&img))
        });
        let mut model2 = Model::named(zoo::build(arch, spec, &mut rng), spec, arch.name());
        group.bench_function(format!("{arch}_train_step"), |bch| {
            bch.iter(|| {
                model2.net_mut().zero_grads();
                let logits = model2.net_mut().forward(&img, Mode::Train);
                let (_, grad) = cross_entropy(&logits, 7);
                model2.net_mut().backward(&grad)
            })
        });
    }
    group.finish();
}

fn data_and_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("data");
    group.sample_size(10);
    group.bench_function("generate_gtsrb_like_100", |bch| {
        bch.iter(|| {
            SyntheticSpec::gtsrb_like()
                .train_size(100)
                .test_size(10)
                .generate()
        })
    });
    let (train, _) = SyntheticSpec::mnist_like().train_size(500).generate();
    let pattern = ConfusionPattern::uniform(10);
    group.bench_function("inject_mislabelling_30pct_500", |bch| {
        bch.iter_batched(
            || StdRng::seed_from_u64(3),
            |mut rng| {
                inject(
                    &train,
                    FaultConfig::new(FaultType::Mislabelling, 0.3),
                    &pattern,
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, tensor_ops, model_passes, data_and_faults);
criterion_main!(benches);
