//! Criterion benches for the paper's timing figures:
//!
//! * `fig08_overhead` — per-input inference cost of each voting technique
//!   relative to the best individual model (paper Fig. 8);
//! * `fig09e_xai_runtime` — absolute per-input runtime of each XAI technique
//!   (paper Fig. 9e);
//! * `rq4_metric_runtime` — diversity-metric cost, the paper's "cosine is
//!   ~10× faster than R²" claim (RQ4).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use remix_core::Remix;
use remix_data::SyntheticSpec;
use remix_diversity::DiversityMetric;
use remix_ensemble::{
    train_zoo, StackedDynamic, StaticWeighted, TrainedEnsemble, UniformAverage, UniformMajority,
    Voter,
};
use remix_nn::Arch;
use remix_tensor::Tensor;
use remix_xai::{Explainer, XaiTechnique};

struct Fixture {
    ensemble: TrainedEnsemble,
    test: remix_data::Dataset,
    validation: remix_data::Dataset,
}

fn fixture() -> Fixture {
    let (train, test) = SyntheticSpec::gtsrb_like()
        .train_size(430)
        .test_size(64)
        .generate();
    let mut rng = StdRng::seed_from_u64(3);
    let (_, validation) = train.split(0.15, &mut rng);
    let models = train_zoo(&[Arch::ConvNet, Arch::ResNet50, Arch::Vgg11], &train, 4, 9);
    Fixture {
        ensemble: TrainedEnsemble::new(models),
        test,
        validation,
    }
}

/// Fig. 8: per-input inference time of each voting technique.
fn fig08_overhead(c: &mut Criterion) {
    let mut fx = fixture();
    let mut group = c.benchmark_group("fig08_overhead");
    group.sample_size(10);
    let img = fx.test.images[0].clone();
    group.bench_function("best_individual", |b| {
        b.iter(|| fx.ensemble.models[0].predict(&img))
    });
    group.bench_function("umaj", |b| {
        b.iter(|| UniformMajority.vote(&mut fx.ensemble, &img))
    });
    group.bench_function("uavg", |b| {
        b.iter(|| UniformAverage.vote(&mut fx.ensemble, &img))
    });
    let mut swmaj = StaticWeighted::fit(&mut fx.ensemble, &fx.validation);
    group.bench_function("s_wmaj", |b| b.iter(|| swmaj.vote(&mut fx.ensemble, &img)));
    let mut dwmaj = StackedDynamic::fit(&mut fx.ensemble, &fx.validation);
    group.bench_function("d_wmaj", |b| b.iter(|| dwmaj.vote(&mut fx.ensemble, &img)));
    // force the XAI path so the bench reflects the disagreement cost
    let remix = Remix::builder().fast_path(false).build();
    group.bench_function("remix_disagreement", |b| {
        b.iter(|| remix.predict(&mut fx.ensemble, &img))
    });
    let remix_fast = Remix::builder().build();
    group.bench_function("remix_with_fast_path", |b| {
        b.iter(|| remix_fast.predict(&mut fx.ensemble, &img))
    });
    group.finish();
}

/// Fig. 9e: absolute per-input runtime of each XAI technique.
fn fig09e_xai_runtime(c: &mut Criterion) {
    let mut fx = fixture();
    let mut group = c.benchmark_group("fig09e_xai_runtime");
    group.sample_size(10);
    let img = fx.test.images[0].clone();
    let mut rng = StdRng::seed_from_u64(5);
    for technique in XaiTechnique::ALL {
        let explainer = Explainer::new(technique);
        group.bench_function(technique.abbrev(), |b| {
            b.iter(|| explainer.explain(&mut fx.ensemble.models[0], &img, 0, &mut rng))
        });
    }
    group.finish();
}

/// RQ4: diversity-metric runtime on feature matrices (cosine vs R² speedup).
fn rq4_metric_runtime(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    // the paper computes metrics on full-resolution feature matrices; use a
    // larger matrix so per-call costs are measurable
    let a = Tensor::rand_uniform(&[128, 128], 0.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform(&[128, 128], 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("rq4_metric_runtime");
    for metric in DiversityMetric::ALL {
        group.bench_function(format!("{metric}"), |bch| {
            bch.iter(|| metric.distance(&a, &b))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    fig08_overhead,
    fig09e_xai_runtime,
    rq4_metric_runtime
);
criterion_main!(benches);
