//! Deterministic parallel fan-out for the ReMIX pipeline, on a persistent
//! worker pool.
//!
//! Every helper here preserves input order in its output and partitions work
//! into *contiguous* shards, so callers can guarantee bit-identical results
//! between sequential and parallel execution: the same per-item computation
//! runs in the same per-item order, only on different threads.
//!
//! Workers are spawned **once**, on the first parallel call, and then reused
//! for the life of the process ([`pool_threads_spawned`] exposes the lifetime
//! spawn count so tests can assert reuse). Dispatching a job costs one mutex
//! lock plus a condvar broadcast (~2 µs), versus ~10 µs *per thread* for the
//! `std::thread::scope` spawns this replaced — which matters because the GEMM
//! kernel in `remix-tensor` dispatches here for every large matrix product.
//! The caller always participates in its own job, so a machine reporting one
//! core (or an empty pool) degrades to plain sequential execution.
//!
//! Thread-count resolution is centralized in [`num_threads`] /
//! [`resolve_threads`], honoring the `REMIX_THREADS` environment variable so
//! benchmarks and CI can pin parallelism without code changes. The pool is
//! sized from the machine's parallelism (or `REMIX_THREADS`, whichever is
//! larger at first use); callers control the *effective* concurrency of each
//! job through how many tasks they split it into.

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Default worker count: the `REMIX_THREADS` environment variable when set to
/// a positive integer, otherwise the machine's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(raw) = std::env::var("REMIX_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves a user-facing thread setting: `0` means "auto" ([`num_threads`]),
/// anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        num_threads()
    } else {
        requested
    }
}

/// Splits `0..len` into at most `shards` contiguous, near-equal, non-empty
/// ranges covering every index exactly once.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let base = len / shards;
    let extra = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Splits `0..len` into contiguous batches of at most `batch_size` items.
///
/// Unlike [`shard_ranges`] (which balances a fixed *number* of shards), this
/// fixes the batch *size*: every range has exactly `batch_size` elements
/// except possibly the last, which holds the ragged remainder. This is the
/// unit of work for the batched inference engine — each batch becomes one
/// multi-column matmul sweep.
///
/// A `batch_size` of 0 is treated as 1.
pub fn batch_ranges(len: usize, batch_size: usize) -> Vec<Range<usize>> {
    let batch_size = batch_size.max(1);
    let mut ranges = Vec::with_capacity(len.div_ceil(batch_size));
    let mut start = 0;
    while start < len {
        let end = (start + batch_size).min(len);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// One posted job: a type-erased task closure plus the claim/completion
/// counters. Tasks are claimed by atomic `fetch_add` on `next`, so every
/// index in `0..ntasks` is executed by exactly one thread; `remaining` counts
/// completions and the last finisher signals `done`.
struct Job {
    /// Lifetime-erased pointer to the caller's task closure. Only valid while
    /// the posting call is blocked in [`Pool::execute`]; stale workers that
    /// observe this job after completion see `next >= ntasks` and never
    /// dereference it.
    func: *const (dyn Fn(usize) + Sync),
    ntasks: usize,
    next: AtomicUsize,
    remaining: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// The poster's open trace span at post time; workers adopt it so spans
    /// opened inside tasks nest under the dispatching span (zero when tracing
    /// is disabled or no span is open).
    trace_parent: u64,
}

// SAFETY: `func` is only dereferenced while the posting thread is blocked in
// `Pool::execute`, which outlives every dereference (the job is not `done`
// until all claimed tasks finish, and unclaimed observers never dereference).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs tasks until none are left. Panics in tasks are caught,
    /// recorded, and re-raised by the posting thread.
    fn work(&self) {
        let _adopt = remix_trace::propagate(self.trace_parent);
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.ntasks {
                return;
            }
            // SAFETY: a claimed index implies the posting call is still
            // blocked waiting for `remaining`, so the closure is alive.
            let f = unsafe { &*self.func };
            if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                *self.done.lock().unwrap() = true;
                self.done_cv.notify_all();
            }
        }
    }
}

/// The pool's mailbox: workers sleep on `available` until `seq` advances,
/// then grab the current job. A job left in the slot after completion is
/// harmless (see [`Job::work`]); it is cleared by the poster to drop the Arc.
struct Inbox {
    seq: u64,
    job: Option<Arc<Job>>,
}

struct PoolShared {
    inbox: Mutex<Inbox>,
    available: Condvar,
}

/// A persistent worker pool. Tests construct private instances; production
/// code uses the lazily-initialized global via [`pool_execute`].
struct Pool {
    shared: Arc<PoolShared>,
    workers: usize,
}

/// Lifetime count of worker threads spawned by pools in this process.
static THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

impl Pool {
    /// Spawns `workers` detached worker threads (zero is valid: every job
    /// then runs entirely on the posting thread).
    fn with_workers(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            inbox: Mutex::new(Inbox { seq: 0, job: None }),
            available: Condvar::new(),
        });
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("remix-pool-{w}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
            THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
        }
        Self { shared, workers }
    }

    /// Runs `f(0)`, `f(1)`, …, `f(ntasks - 1)`, each exactly once, fanned out
    /// across the workers with the calling thread participating. Returns when
    /// every task has finished. Panics in tasks are re-raised here.
    fn execute(&self, ntasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if ntasks == 0 {
            return;
        }
        remix_trace::incr(remix_trace::Counter::PoolJobs);
        remix_trace::add(remix_trace::Counter::PoolTasks, ntasks as u64);
        if ntasks == 1 || self.workers == 0 {
            // Degenerate jobs run on the posting thread, where span nesting is
            // already correct — no propagation needed.
            for i in 0..ntasks {
                f(i);
            }
            return;
        }
        /// Erases the closure's borrow lifetime so it can sit in the shared
        /// [`Job`]. Sound because `execute` does not return until `remaining`
        /// hits zero, so the pointer outlives every dereference (see [`Job`]).
        fn erase<'a>(
            f: &'a (dyn Fn(usize) + Sync + 'a),
        ) -> *const (dyn Fn(usize) + Sync + 'static) {
            // SAFETY: both sides are fat pointers to the same allocation; only
            // the (unused-at-runtime) lifetime bound changes.
            unsafe {
                std::mem::transmute::<
                    &'a (dyn Fn(usize) + Sync + 'a),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(f)
            }
        }
        let job = Arc::new(Job {
            func: erase(f),
            ntasks,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(ntasks),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
            trace_parent: remix_trace::current_span(),
        });
        let posted_seq = {
            let mut inbox = self.shared.inbox.lock().unwrap();
            inbox.seq += 1;
            inbox.job = Some(Arc::clone(&job));
            self.shared.available.notify_all();
            inbox.seq
        };
        // The poster is also a worker for its own job.
        job.work();
        let mut done = job.done.lock().unwrap();
        while !*done {
            done = job.done_cv.wait(done).unwrap();
        }
        drop(done);
        // Drop the inbox's Arc so the job (and its dangling closure pointer)
        // does not linger; guard on seq in case another poster raced in.
        {
            let mut inbox = self.shared.inbox.lock().unwrap();
            if inbox.seq == posted_seq {
                inbox.job = None;
            }
        }
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut inbox = shared.inbox.lock().unwrap();
            loop {
                if inbox.seq != seen {
                    seen = inbox.seq;
                    break inbox.job.clone();
                }
                inbox = shared.available.wait(inbox).unwrap();
            }
        };
        if let Some(job) = job {
            job.work();
        }
    }
}

/// The process-wide pool, spawned on first use. Sized to leave one slot for
/// the posting thread; `REMIX_THREADS` can raise it above the core count at
/// first use (useful for exercising the parallel paths on small machines).
fn global_pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        Pool::with_workers(num_threads().max(hw).saturating_sub(1))
    })
}

/// Runs `f(i)` for every `i` in `0..ntasks`, each exactly once, across the
/// persistent global pool with the calling thread participating.
///
/// Task *claim order* follows the atomic counter, but callers must not rely
/// on any cross-task ordering — tasks run concurrently. Determinism comes
/// from each task writing disjoint state, exactly as with scoped threads.
/// Nested calls are safe: a worker posting a sub-job simply participates in
/// it while other idle workers help.
///
/// # Panics
///
/// Re-raises the first panic observed among the tasks.
pub fn pool_execute(ntasks: usize, f: &(dyn Fn(usize) + Sync)) {
    global_pool().execute(ntasks, f);
}

/// Total worker threads ever spawned by this process's pools. Flat across
/// repeated parallel calls — the probe tests use this to assert the pool is
/// actually reused rather than respawned.
pub fn pool_threads_spawned() -> usize {
    THREADS_SPAWNED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Order-preserving combinators (pool-backed)
// ---------------------------------------------------------------------------

/// Copyable raw-pointer wrapper so disjoint-index writes can cross the
/// `Fn(usize) + Sync` task boundary. (`Copy`/`Clone` are manual so no `T:
/// Clone` bound is implied, and `get` keeps closures capturing the whole
/// wrapper rather than the raw field.)
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(self) -> *mut T {
        self.0
    }
}

/// Computes `f(i)` for `i` in `0..len` across `threads` contiguous shards and
/// returns the results in index order.
///
/// If a task panics, results produced so far are leaked (not dropped) before
/// the panic is re-raised; all callers treat that as a fatal error.
fn pool_collect<U, F>(len: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let shards = shard_ranges(len, threads);
    if shards.len() <= 1 {
        return (0..len).map(f).collect();
    }
    let mut out: Vec<std::mem::MaybeUninit<U>> = Vec::with_capacity(len);
    out.resize_with(len, std::mem::MaybeUninit::uninit);
    let base = SendPtr(out.as_mut_ptr());
    pool_execute(shards.len(), &|s| {
        for i in shards[s].clone() {
            // SAFETY: shards partition 0..len disjointly and `out` outlives
            // the call, so each slot is written exactly once, without aliasing.
            unsafe { base.get().add(i).write(std::mem::MaybeUninit::new(f(i))) };
        }
    });
    // SAFETY: every slot in 0..len was initialized by exactly one task.
    unsafe {
        let mut out = std::mem::ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr().cast::<U>(), out.len(), out.capacity())
    }
}

/// Order-preserving parallel map over shared items.
///
/// `f` receives `(index, &item)`; the output at position `i` is `f(i,
/// &items[i])`. With `threads <= 1` this degenerates to a plain serial map on
/// the calling thread.
pub fn map_indexed<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    pool_collect(items.len(), threads, |i| f(i, &items[i]))
}

/// Order-preserving parallel map over mutable items (each item is visited by
/// exactly one worker).
///
/// `f` receives `(index, &mut item)`; the output at position `i` is `f(i,
/// &mut items[i])`. With `threads <= 1` this degenerates to a serial map.
pub fn map_mut_indexed<T, U, F>(items: &mut [T], threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T) -> U + Sync,
{
    let base = SendPtr(items.as_mut_ptr());
    let len = items.len();
    pool_collect(len, threads, move |i| {
        // SAFETY: pool_collect visits every index exactly once, so the &mut
        // borrows are disjoint; `items` outlives the call.
        let item = unsafe { &mut *base.get().add(i) };
        f(i, item)
    })
}

/// Runs `f(span_index, span)` for each consecutive `span`-element chunk of
/// `data` (the final chunk may be shorter), fanned out across the pool.
///
/// Callers pick `span` so the chunk count matches their desired parallelism;
/// contiguous chunks keep writes disjoint without synchronization.
///
/// # Panics
///
/// Panics if `span` is zero.
pub fn for_each_span_mut<T, F>(data: &mut [T], span: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(span > 0, "span must be positive");
    let len = data.len();
    if len <= span {
        if len > 0 {
            f(0, data);
        }
        return;
    }
    let nchunks = len.div_ceil(span);
    let base = SendPtr(data.as_mut_ptr());
    pool_execute(nchunks, &|idx| {
        let start = idx * span;
        let n = span.min(len - start);
        // SAFETY: chunk `idx` covers `start..start + n`; chunks are disjoint
        // and each task index runs exactly once, so no slice aliases another.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), n) };
        f(idx, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_exactly() {
        for len in [0usize, 1, 2, 7, 16, 33] {
            for shards in [1usize, 2, 3, 8, 64] {
                let ranges = shard_ranges(len, shards);
                let mut covered = 0;
                let mut expected_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected_start);
                    assert!(!r.is_empty(), "len={len} shards={shards}");
                    covered += r.len();
                    expected_start = r.end;
                }
                assert_eq!(covered, len);
                assert!(ranges.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn map_indexed_preserves_order_for_any_thread_count() {
        let items: Vec<usize> = (0..100).collect();
        let expected: Vec<usize> = items.iter().map(|v| v * 3).collect();
        for threads in [1, 2, 3, 7, 100, 200] {
            let got = map_indexed(&items, threads, |i, &v| {
                assert_eq!(i, v);
                v * 3
            });
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn map_mut_indexed_mutates_and_preserves_order() {
        for threads in [1, 4, 9] {
            let mut items: Vec<usize> = (0..37).collect();
            let got = map_mut_indexed(&mut items, threads, |i, v| {
                *v += 1;
                i
            });
            assert_eq!(got, (0..37).collect::<Vec<_>>());
            assert_eq!(items, (1..38).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_span_mut_covers_all_chunks() {
        let mut data = vec![0u32; 25];
        for_each_span_mut(&mut data, 7, |idx, chunk| {
            for v in chunk {
                *v = idx as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[24], 4); // 25 = 7+7+7+4 -> four chunks
    }

    #[test]
    fn resolve_threads_treats_zero_as_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn batch_ranges_fixes_size_with_ragged_tail() {
        assert_eq!(batch_ranges(0, 32), vec![]);
        assert_eq!(batch_ranges(7, 3), vec![0..3, 3..6, 6..7]);
        assert_eq!(batch_ranges(6, 3), vec![0..3, 3..6]);
        assert_eq!(batch_ranges(2, 32), vec![0..2]);
        // zero batch size degrades to one-at-a-time instead of looping forever
        assert_eq!(batch_ranges(3, 0), vec![0..1, 1..2, 2..3]);
        // every index covered exactly once, in order
        let covered: Vec<usize> = batch_ranges(103, 10).into_iter().flatten().collect();
        assert_eq!(covered, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn private_pool_runs_every_task_exactly_once() {
        // Explicit worker counts so the worker code path is exercised even on
        // single-core CI machines (where the global pool spawns no workers).
        for workers in [0usize, 1, 3] {
            let pool = Pool::with_workers(workers);
            for ntasks in [0usize, 1, 2, 5, 64] {
                let hits: Vec<AtomicUsize> = (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
                pool.execute(ntasks, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} workers {workers}");
                }
            }
        }
    }

    #[test]
    fn pool_is_reused_across_jobs() {
        let pool = Pool::with_workers(2);
        let before = pool_threads_spawned();
        for _ in 0..50 {
            let sum = AtomicUsize::new(0);
            pool.execute(8, &|i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 28);
        }
        assert_eq!(
            pool_threads_spawned(),
            before,
            "50 jobs must not spawn new threads"
        );
    }

    #[test]
    fn nested_execute_completes() {
        let pool = Pool::with_workers(2);
        let total = AtomicUsize::new(0);
        pool.execute(3, &|_| {
            // Each outer task runs an inner job on the same pool.
            let inner = AtomicUsize::new(0);
            pool.execute(4, &|j| {
                inner.fetch_add(j + 1, Ordering::Relaxed);
            });
            total.fetch_add(inner.load(Ordering::Relaxed), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 30); // 3 × (1+2+3+4)
    }

    #[test]
    fn task_panic_propagates_to_poster() {
        let pool = Pool::with_workers(1);
        let result = std::panic::catch_unwind(|| {
            pool.execute(4, &|i| {
                assert!(i != 2, "boom");
            });
        });
        assert!(
            result.is_err(),
            "panic in task must reach the posting thread"
        );
        // The pool stays usable after a panicked job.
        let ok = AtomicUsize::new(0);
        pool.execute(4, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }
}
