//! Deterministic scoped-thread fan-out for the ReMIX pipeline.
//!
//! Every helper here preserves input order in its output and partitions work
//! into *contiguous* shards, so callers can guarantee bit-identical results
//! between sequential and parallel execution: the same per-item computation
//! runs in the same per-item order, only on different threads. There is no
//! work stealing and no thread pool — `std::thread::scope` keeps lifetimes
//! simple and the spawn cost (~10 µs per thread) is noise next to the
//! model-inference and XAI work being parallelized.
//!
//! Thread-count resolution is centralized in [`num_threads`] /
//! [`resolve_threads`], honoring the `REMIX_THREADS` environment variable so
//! benchmarks and CI can pin parallelism without code changes.

use std::ops::Range;

/// Default worker count: the `REMIX_THREADS` environment variable when set to
/// a positive integer, otherwise the machine's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(raw) = std::env::var("REMIX_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves a user-facing thread setting: `0` means "auto" ([`num_threads`]),
/// anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        num_threads()
    } else {
        requested
    }
}

/// Splits `0..len` into at most `shards` contiguous, near-equal, non-empty
/// ranges covering every index exactly once.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let base = len / shards;
    let extra = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Splits `0..len` into contiguous batches of at most `batch_size` items.
///
/// Unlike [`shard_ranges`] (which balances a fixed *number* of shards), this
/// fixes the batch *size*: every range has exactly `batch_size` elements
/// except possibly the last, which holds the ragged remainder. This is the
/// unit of work for the batched inference engine — each batch becomes one
/// multi-column matmul sweep.
///
/// A `batch_size` of 0 is treated as 1.
pub fn batch_ranges(len: usize, batch_size: usize) -> Vec<Range<usize>> {
    let batch_size = batch_size.max(1);
    let mut ranges = Vec::with_capacity(len.div_ceil(batch_size));
    let mut start = 0;
    while start < len {
        let end = (start + batch_size).min(len);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Order-preserving parallel map over shared items.
///
/// `f` receives `(index, &item)`; the output at position `i` is `f(i,
/// &items[i])`. With `threads <= 1` this degenerates to a plain serial map on
/// the calling thread.
pub fn map_indexed<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let shards = shard_ranges(items.len(), threads);
    if shards.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut outputs: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|range| {
                let f = &f;
                let range = range.clone();
                scope.spawn(move || range.map(|i| f(i, &items[i])).collect::<Vec<U>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for shard in &mut outputs {
        out.append(shard);
    }
    out
}

/// Order-preserving parallel map over mutable items (each item is visited by
/// exactly one worker).
///
/// `f` receives `(index, &mut item)`; the output at position `i` is `f(i,
/// &mut items[i])`. With `threads <= 1` this degenerates to a serial map.
pub fn map_mut_indexed<T, U, F>(items: &mut [T], threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T) -> U + Sync,
{
    let shards = shard_ranges(items.len(), threads);
    if shards.len() <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut outputs: Vec<Vec<U>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards.len());
        let mut rest = items;
        let mut start = 0;
        for range in &shards {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let f = &f;
            let base = start;
            handles.push(scope.spawn(move || {
                chunk
                    .iter_mut()
                    .enumerate()
                    .map(|(offset, item)| f(base + offset, item))
                    .collect::<Vec<U>>()
            }));
            start += range.len();
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(outputs.iter().map(Vec::len).sum());
    for shard in &mut outputs {
        out.append(shard);
    }
    out
}

/// Runs `f(span_index, span)` for each consecutive `span`-element chunk of
/// `data`, one scoped thread per chunk (the final chunk may be shorter).
///
/// Callers pick `span` so the chunk count matches their desired parallelism;
/// contiguous chunks keep writes disjoint without synchronization.
///
/// # Panics
///
/// Panics if `span` is zero.
pub fn for_each_span_mut<T, F>(data: &mut [T], span: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(span > 0, "span must be positive");
    if data.len() <= span {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    std::thread::scope(|scope| {
        for (idx, chunk) in data.chunks_mut(span).enumerate() {
            let f = &f;
            scope.spawn(move || f(idx, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_exactly() {
        for len in [0usize, 1, 2, 7, 16, 33] {
            for shards in [1usize, 2, 3, 8, 64] {
                let ranges = shard_ranges(len, shards);
                let mut covered = 0;
                let mut expected_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected_start);
                    assert!(!r.is_empty(), "len={len} shards={shards}");
                    covered += r.len();
                    expected_start = r.end;
                }
                assert_eq!(covered, len);
                assert!(ranges.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn map_indexed_preserves_order_for_any_thread_count() {
        let items: Vec<usize> = (0..100).collect();
        let expected: Vec<usize> = items.iter().map(|v| v * 3).collect();
        for threads in [1, 2, 3, 7, 100, 200] {
            let got = map_indexed(&items, threads, |i, &v| {
                assert_eq!(i, v);
                v * 3
            });
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn map_mut_indexed_mutates_and_preserves_order() {
        for threads in [1, 4, 9] {
            let mut items: Vec<usize> = (0..37).collect();
            let got = map_mut_indexed(&mut items, threads, |i, v| {
                *v += 1;
                i
            });
            assert_eq!(got, (0..37).collect::<Vec<_>>());
            assert_eq!(items, (1..38).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_span_mut_covers_all_chunks() {
        let mut data = vec![0u32; 25];
        for_each_span_mut(&mut data, 7, |idx, chunk| {
            for v in chunk {
                *v = idx as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[24], 4); // 25 = 7+7+7+4 -> four chunks
    }

    #[test]
    fn resolve_threads_treats_zero_as_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn batch_ranges_fixes_size_with_ragged_tail() {
        assert_eq!(batch_ranges(0, 32), vec![]);
        assert_eq!(batch_ranges(7, 3), vec![0..3, 3..6, 6..7]);
        assert_eq!(batch_ranges(6, 3), vec![0..3, 3..6]);
        assert_eq!(batch_ranges(2, 32), vec![0..2]);
        // zero batch size degrades to one-at-a-time instead of looping forever
        assert_eq!(batch_ranges(3, 0), vec![0..1, 1..2, 2..3]);
        // every index covered exactly once, in order
        let covered: Vec<usize> = batch_ranges(103, 10).into_iter().flatten().collect();
        assert_eq!(covered, (0..103).collect::<Vec<_>>());
    }
}
