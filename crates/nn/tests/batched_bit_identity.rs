//! The batched inference engine's core guarantee: for every zoo archetype,
//! `forward_batch` / `backward_input_batch` produce bit-for-bit the same
//! numbers as the historical one-sample-at-a-time path, for any batch size
//! including ragged final batches.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use remix_nn::{zoo, Arch, InputSpec, Model};
use remix_tensor::Tensor;

fn spec() -> InputSpec {
    InputSpec {
        channels: 1,
        size: 16,
        num_classes: 5,
    }
}

fn model(arch: Arch, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    Model::new(zoo::build(arch, spec(), &mut rng), spec())
}

fn images(n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Tensor::rand_uniform(&[1, 16, 16], 0.0, 1.0, &mut rng))
        .collect()
}

#[test]
fn batched_forward_is_bit_identical_to_sequential() {
    for arch in Arch::ALL {
        let mut m = model(arch, 1);
        let batch = images(5, 2);
        let sequential: Vec<Tensor> = batch.iter().map(|x| m.predict_proba(x)).collect();
        let batched = m.predict_proba_batch(&batch).expect("valid batch");
        for (i, (a, b)) in sequential.iter().zip(&batched).enumerate() {
            assert_eq!(
                a.data(),
                b.data(),
                "{arch} sample {i}: batched probs diverged"
            );
        }
    }
}

#[test]
fn batched_input_gradients_are_bit_identical_to_sequential() {
    for arch in Arch::ALL {
        let mut m = model(arch, 3);
        let batch = images(4, 4);
        let classes: Vec<usize> = (0..batch.len()).map(|i| i % 5).collect();
        let sequential: Vec<Tensor> = batch
            .iter()
            .zip(&classes)
            .map(|(x, &c)| m.input_gradient(x, c))
            .collect();
        let batched = m
            .input_gradient_batch(&batch, &classes)
            .expect("valid batch");
        for (i, (a, b)) in sequential.iter().zip(&batched).enumerate() {
            assert!(a.abs().sum() > 0.0, "{arch} sample {i}: zero gradient");
            assert_eq!(
                a.data(),
                b.data(),
                "{arch} sample {i}: batched input gradient diverged"
            );
        }
    }
}

#[test]
fn mismatched_class_count_is_rejected() {
    let mut m = model(Arch::ConvNet, 5);
    let batch = images(3, 6);
    assert!(m.input_gradient_batch(&batch, &[0, 1]).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Ragged splits: chunking N samples into batches of any size B (the
    /// final batch has N mod B samples) reproduces the whole-batch result.
    #[test]
    fn ragged_batches_are_bit_identical(n in 1usize..8, b in 1usize..5, seed in 0u64..64) {
        let mut m = model(Arch::ConvNet, 7);
        let batch = images(n, seed);
        let whole = m.predict_proba_batch(&batch).expect("valid batch");
        let mut chunked = Vec::with_capacity(n);
        for chunk in batch.chunks(b) {
            chunked.extend(m.predict_proba_batch(chunk).expect("valid chunk"));
        }
        for (a, c) in whole.iter().zip(&chunked) {
            prop_assert_eq!(a.data(), c.data());
        }
    }
}
