//! Observability of the freeze fast path: a frozen model's GEMMs report
//! `prepack_hits` and pay strictly less `gemm_pack_bytes` than the unfrozen
//! model on the same batch. Kept in its own test binary because the trace
//! counters are process-global.

use rand::{rngs::StdRng, SeedableRng};
use remix_nn::{zoo, Arch, InputSpec, Model};
use remix_tensor::Tensor;

#[test]
fn frozen_batches_hit_the_prepacked_path() {
    let spec = InputSpec {
        channels: 1,
        size: 16,
        num_classes: 5,
    };
    let mut rng = StdRng::seed_from_u64(51);
    let mut m = Model::new(zoo::build(Arch::ConvNet, spec, &mut rng), spec);
    let batch: Vec<Tensor> = (0..4)
        .map(|_| Tensor::rand_uniform(&[1, 16, 16], 0.0, 1.0, &mut rng))
        .collect();

    remix_trace::set_enabled(true);
    remix_trace::reset();
    m.predict_proba_batch(&batch).unwrap();
    let unfrozen_hits = remix_trace::counter(remix_trace::Counter::PrepackHits);
    let unfrozen_pack_bytes = remix_trace::counter(remix_trace::Counter::GemmPackBytes);
    assert_eq!(unfrozen_hits, 0, "unfrozen model reported prepack hits");

    m.freeze_for_inference();
    remix_trace::reset();
    m.predict_proba_batch(&batch).unwrap();
    let frozen_hits = remix_trace::counter(remix_trace::Counter::PrepackHits);
    let frozen_pack_bytes = remix_trace::counter(remix_trace::Counter::GemmPackBytes);
    remix_trace::set_enabled(false);
    assert!(
        frozen_hits > 0,
        "frozen model never hit a prepacked operand"
    );
    assert!(
        frozen_pack_bytes < unfrozen_pack_bytes,
        "freezing did not reduce pack traffic ({frozen_pack_bytes} vs {unfrozen_pack_bytes})"
    );
}
