//! The freeze story's two guarantees: a frozen model ([`Model::freeze_for_inference`])
//! is bit-identical to an unfrozen one on every serving-path product, and a
//! stale pack is impossible — any parameter mutation (optimizer step, state
//! load) flows through `visit_params` and drops the packs, so training after
//! a freeze matches a never-frozen model exactly.

use rand::{rngs::StdRng, SeedableRng};
use remix_nn::state::{load_state, save_state};
use remix_nn::{zoo, Arch, InputSpec, Model, Trainer, TrainerConfig};
use remix_tensor::Tensor;

fn spec() -> InputSpec {
    InputSpec {
        channels: 1,
        size: 16,
        num_classes: 5,
    }
}

fn model(arch: Arch, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    Model::new(zoo::build(arch, spec(), &mut rng), spec())
}

fn images(n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Tensor::rand_uniform(&[1, 16, 16], 0.0, 1.0, &mut rng))
        .collect()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn batch_bits(ts: &[Tensor]) -> Vec<Vec<u32>> {
    ts.iter().map(bits).collect()
}

#[test]
fn frozen_model_is_bit_identical_on_forward_and_gradients() {
    for arch in Arch::ALL {
        let mut plain = model(arch, 11);
        let mut frozen = plain.clone();
        frozen.freeze_for_inference();
        let batch = images(5, 12);
        let classes: Vec<usize> = (0..batch.len()).map(|i| i % 5).collect();

        // single-sample and batched forwards
        for x in &batch {
            assert_eq!(
                bits(&plain.predict_proba(x)),
                bits(&frozen.predict_proba(x)),
                "{arch}: frozen per-sample probs diverged"
            );
        }
        let probs_plain = plain.predict_proba_batch(&batch).expect("valid batch");
        let probs_frozen = frozen.predict_proba_batch(&batch).expect("valid batch");
        assert_eq!(
            batch_bits(&probs_plain),
            batch_bits(&probs_frozen),
            "{arch}: frozen batched probs diverged"
        );

        // the XAI primitive, both per-sample and batched
        for (x, &c) in batch.iter().zip(&classes) {
            assert_eq!(
                bits(&plain.input_gradient(x, c)),
                bits(&frozen.input_gradient(x, c)),
                "{arch}: frozen per-sample input gradient diverged"
            );
        }
        let grads_plain = plain
            .input_gradient_batch(&batch, &classes)
            .expect("valid batch");
        let grads_frozen = frozen
            .input_gradient_batch(&batch, &classes)
            .expect("valid batch");
        assert_eq!(
            batch_bits(&grads_plain),
            batch_bits(&grads_frozen),
            "{arch}: frozen batched input gradients diverged"
        );
    }
}

#[test]
fn freezing_is_idempotent() {
    let mut once = model(Arch::ConvNet, 21);
    let mut twice = once.clone();
    once.freeze_for_inference();
    twice.freeze_for_inference();
    twice.freeze_for_inference();
    let batch = images(3, 22);
    assert_eq!(
        batch_bits(&once.predict_proba_batch(&batch).unwrap()),
        batch_bits(&twice.predict_proba_batch(&batch).unwrap()),
    );
}

#[test]
fn training_after_freeze_matches_a_never_frozen_model_bitwise() {
    // Optimizer steps mutate weights through visit_params, which must drop
    // the packs — so a frozen-then-trained model ends at exactly the same
    // weights and predictions as one that was never frozen.
    let mut never_frozen = model(Arch::ConvNet, 31);
    let mut frozen_first = never_frozen.clone();
    frozen_first.freeze_for_inference();

    let train_images = images(12, 32);
    let labels: Vec<usize> = (0..train_images.len()).map(|i| i % 5).collect();
    let config = TrainerConfig {
        epochs: 2,
        lr: 0.05,
        ..TrainerConfig::default()
    };
    Trainer::new(config.clone()).fit(&mut never_frozen, &train_images, &labels);
    Trainer::new(config).fit(&mut frozen_first, &train_images, &labels);

    let a = save_state(&mut never_frozen);
    let b = save_state(&mut frozen_first);
    for (i, (ta, tb)) in a.tensors.iter().zip(&b.tensors).enumerate() {
        let (ba, bb): (Vec<u32>, Vec<u32>) = (
            ta.iter().map(|v| v.to_bits()).collect(),
            tb.iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(ba, bb, "trained parameter tensor {i} diverged after freeze");
    }
    let batch = images(4, 33);
    assert_eq!(
        batch_bits(&never_frozen.predict_proba_batch(&batch).unwrap()),
        batch_bits(&frozen_first.predict_proba_batch(&batch).unwrap()),
        "post-training predictions diverged"
    );
}

#[test]
fn load_state_after_freeze_cannot_serve_a_stale_pack() {
    // Loading different weights into a frozen model goes through
    // visit_params, dropping the packs: the model must immediately predict
    // with the NEW weights, identically to a never-frozen model holding them.
    let mut donor = model(Arch::ConvNet, 41);
    let mut frozen = model(Arch::ConvNet, 42); // different init
    frozen.freeze_for_inference();
    let state = save_state(&mut donor);
    load_state(&mut frozen, &state).expect("same architecture");

    let batch = images(4, 43);
    let expected = batch_bits(&donor.predict_proba_batch(&batch).unwrap());
    assert_eq!(
        expected,
        batch_bits(&frozen.predict_proba_batch(&batch).unwrap()),
        "stale pack survived load_state"
    );
    // ...and refreezing on the new weights stays bit-identical.
    frozen.freeze_for_inference();
    assert_eq!(
        expected,
        batch_bits(&frozen.predict_proba_batch(&batch).unwrap()),
        "refreeze after load_state diverged"
    );
}
