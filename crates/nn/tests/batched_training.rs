//! The batched training step's core guarantee: `Trainer::fit` with the
//! batched forward/backward engine produces bit-for-bit the same final
//! weights and losses as the historical per-sample loop — including random
//! dropout masks, instance-norm statistics, and depthwise/residual paths.

use rand::{rngs::StdRng, SeedableRng};
use remix_nn::{zoo, Arch, InputSpec, Layer, Model, Trainer, TrainerConfig};
use remix_tensor::Tensor;

fn spec() -> InputSpec {
    InputSpec {
        channels: 1,
        size: 16,
        num_classes: 5,
    }
}

fn model(arch: Arch, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    Model::new(zoo::build(arch, spec(), &mut rng), spec())
}

fn dataset(n: usize, seed: u64) -> (Vec<Tensor>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let images = (0..n)
        .map(|_| Tensor::rand_uniform(&[1, 16, 16], 0.0, 1.0, &mut rng))
        .collect();
    let labels = (0..n).map(|i| i % 5).collect();
    (images, labels)
}

fn weight_bits(m: &mut Model) -> Vec<u32> {
    let mut bits = Vec::new();
    m.net_mut().visit_params(&mut |p, _| {
        bits.extend(p.data().iter().map(|v| v.to_bits()));
    });
    bits
}

/// Trains two identically-seeded copies of `arch`, one through the batched
/// engine and one through the per-sample loop, and demands bitwise equality.
fn assert_batched_training_matches(arch: Arch) {
    let (images, labels) = dataset(6, 20);
    let config = TrainerConfig {
        epochs: 2,
        batch_size: 3,
        seed: 21,
        ..TrainerConfig::default()
    };
    let mut batched = model(arch, 22);
    let mut per_sample = model(arch, 22);
    let lb = Trainer::new(TrainerConfig {
        batched: true,
        ..config.clone()
    })
    .fit(&mut batched, &images, &labels);
    let lp = Trainer::new(TrainerConfig {
        batched: false,
        ..config
    })
    .fit(&mut per_sample, &images, &labels);
    assert_eq!(lb.to_bits(), lp.to_bits(), "{arch}: final losses diverged");
    assert_eq!(
        weight_bits(&mut batched),
        weight_bits(&mut per_sample),
        "{arch}: final weights diverged bitwise"
    );
}

#[test]
fn convnet_batched_training_is_bit_identical() {
    // Conv2d + MaxPool + Dense
    assert!(model(Arch::ConvNet, 1).net_mut().supports_batched_train());
    assert_batched_training_matches(Arch::ConvNet);
}

#[test]
fn deconvnet_batched_training_is_bit_identical() {
    // Conv2d + Dropout: batched masks must consume the RNG stream exactly
    // like the per-sample loop.
    assert!(model(Arch::DeconvNet, 1).net_mut().supports_batched_train());
    assert_batched_training_matches(Arch::DeconvNet);
}

#[test]
fn mobilenet_batched_training_is_bit_identical() {
    // DepthwiseConv2d + InstanceNorm2d + pointwise Conv2d
    assert!(model(Arch::MobileNet, 1).net_mut().supports_batched_train());
    assert_batched_training_matches(Arch::MobileNet);
}

#[test]
fn resnet18_batched_training_is_bit_identical() {
    // Residual blocks with projection shortcuts
    assert!(model(Arch::ResNet18, 1).net_mut().supports_batched_train());
    assert_batched_training_matches(Arch::ResNet18);
}

#[test]
fn unsupported_arch_falls_back_to_per_sample_training() {
    // SqueezeExcite has no batched training backward, so EfficientNet models
    // must report unsupported and the trainer silently takes the per-sample
    // path — producing the same result whether `batched` is requested or not.
    let mut probe = model(Arch::EfficientNetV2B0, 1);
    assert!(!probe.net_mut().supports_batched_train());
    assert_batched_training_matches(Arch::EfficientNetV2B0);
}
