//! Mini-batch training loop with optional per-sample weights.

use crate::{cross_entropy, Adam, Layer, Mode, Model, Optimizer, Sgd};
use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
use remix_tensor::Tensor;

/// Which optimizer [`Trainer::fit`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerKind {
    /// SGD with momentum (the zoo's default).
    #[default]
    Sgd,
    /// Adam with standard betas (useful for the MiniViT and MLP models).
    Adam,
}

/// Hyperparameters for [`Trainer`].
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size (gradients are averaged over the batch).
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Per-batch global gradient-norm clip (0 disables clipping). Keeps the
    /// deeper zoo models (EfficientNetV2) stable at practical learning rates.
    pub grad_clip: f32,
    /// Shuffling / weighted-resampling seed.
    pub seed: u64,
    /// Optimizer selection.
    pub optimizer: OptimizerKind,
    /// Drive mini-batches through the batched forward/backward engine when
    /// every layer supports it (`supports_batched_train`). Bit-identical to
    /// the per-sample loop; disable to force the per-sample path (the
    /// `bench_gemm` baseline does).
    pub batched: bool,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            batch_size: 16,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            grad_clip: 5.0,
            seed: 0,
            optimizer: OptimizerKind::Sgd,
            batched: true,
        }
    }
}

/// Trains a [`Model`] on `(image, label)` pairs with softmax cross-entropy.
///
/// Supports AdaBoost-style per-sample weights: when weights are set, each
/// epoch resamples the training set proportionally to the weights (sampling
/// with replacement), which is equivalent in expectation to weighting the
/// loss and is the standard practice for boosting neural base learners.
#[derive(Debug)]
pub struct Trainer {
    config: TrainerConfig,
    sample_weights: Option<Vec<f32>>,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainerConfig) -> Self {
        Self {
            config,
            sample_weights: None,
        }
    }

    /// Sets AdaBoost-style per-sample weights (must match the dataset length
    /// at fit time; they are normalized internally).
    pub fn with_sample_weights(mut self, weights: Vec<f32>) -> Self {
        self.sample_weights = Some(weights);
        self
    }

    /// Trains `model` in place and returns the mean loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if `images`/`labels` lengths differ, the dataset is empty, or
    /// configured sample weights have the wrong length.
    pub fn fit(&self, model: &mut Model, images: &[Tensor], labels: &[usize]) -> f32 {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        assert!(!images.is_empty(), "empty training set");
        if let Some(w) = &self.sample_weights {
            assert_eq!(w.len(), images.len(), "sample weight length mismatch");
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut optimizer: Box<dyn Optimizer> = match self.config.optimizer {
            OptimizerKind::Sgd => Box::new(Sgd::new(
                self.config.lr,
                self.config.momentum,
                self.config.weight_decay,
            )),
            OptimizerKind::Adam => Box::new(Adam::new(self.config.lr)),
        };
        let n = images.len();
        let batched = self.config.batched && model.net_mut().supports_batched_train();
        let mut last_epoch_loss = f32::MAX;
        let _fit = remix_trace::span("fit");
        for _epoch in 0..self.config.epochs {
            let _epoch_span = remix_trace::span("epoch");
            let order = self.epoch_order(n, &mut rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(self.config.batch_size) {
                remix_trace::incr(remix_trace::Counter::TrainBatches);
                remix_trace::add(remix_trace::Counter::TrainSamples, batch.len() as u64);
                model.net_mut().zero_grads();
                let mut batch_loss = 0.0;
                if batched {
                    // One batched forward/backward: a handful of large GEMMs
                    // instead of batch_size small ones. Per-sample losses and
                    // loss gradients are taken in batch order, and every
                    // layer's backward_batch accumulates parameter gradients
                    // per sample in that same order, so the result — weights,
                    // losses, RNG streams — is bit-identical to the
                    // per-sample branch below.
                    let batch_images: Vec<Tensor> =
                        batch.iter().map(|&i| images[i].clone()).collect();
                    let logits = model
                        .net_mut()
                        .forward_batch(&batch_images, Mode::Train)
                        .expect("batched forward in training");
                    let mut grads = Vec::with_capacity(batch.len());
                    for (logit, &i) in logits.iter().zip(batch) {
                        let (loss, grad) = cross_entropy(logit, labels[i]);
                        batch_loss += loss;
                        grads.push(grad);
                    }
                    // backward_batch_train skips the first layer's input
                    // gradient (the image gradient, which nothing consumes);
                    // parameter gradients run the same chains either way.
                    model
                        .net_mut()
                        .backward_batch_train(&grads)
                        .expect("batched backward in training");
                } else {
                    for &i in batch {
                        let logits = model.net_mut().forward(&images[i], Mode::Train);
                        let (loss, grad) = cross_entropy(&logits, labels[i]);
                        batch_loss += loss;
                        // Same first-layer skip as the batched branch, so the
                        // two paths stay step-for-step comparable.
                        model.net_mut().backward_train(&grad);
                    }
                }
                let mut scale = 1.0 / batch.len() as f32;
                if self.config.grad_clip > 0.0 {
                    let mut sq = 0.0f32;
                    model.net_mut().visit_params(&mut |_, g| {
                        sq += g.data().iter().map(|v| v * v).sum::<f32>();
                    });
                    let norm = sq.sqrt() * scale;
                    if norm > self.config.grad_clip {
                        scale *= self.config.grad_clip / norm;
                    }
                }
                optimizer.step(model.net_mut(), scale);
                epoch_loss += batch_loss;
            }
            last_epoch_loss = epoch_loss / n as f32;
        }
        last_epoch_loss
    }

    /// Index order for one epoch: a shuffle, or a weighted resample when
    /// sample weights are configured.
    fn epoch_order(&self, n: usize, rng: &mut StdRng) -> Vec<usize> {
        match &self.sample_weights {
            None => {
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(rng);
                order
            }
            Some(weights) => {
                let total: f32 = weights.iter().sum();
                let cumulative: Vec<f32> = weights
                    .iter()
                    .scan(0.0, |acc, &w| {
                        *acc += w / total;
                        Some(*acc)
                    })
                    .collect();
                (0..n)
                    .map(|_| {
                        let u: f32 = rng.gen();
                        cumulative.partition_point(|&c| c < u).min(n - 1)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten, Relu};
    use crate::{InputSpec, Sequential};
    use rand::{rngs::StdRng, SeedableRng};

    fn toy_dataset(n: usize, seed: u64) -> (Vec<Tensor>, Vec<usize>) {
        // class 0 = bright top-left quadrant, class 1 = bright bottom-right
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let mut img = Tensor::randn(&[1, 4, 4], 0.1, &mut rng);
            let (y0, x0) = if class == 0 { (0, 0) } else { (2, 2) };
            for y in y0..y0 + 2 {
                for x in x0..x0 + 2 {
                    img.set(&[0, y, x], 1.0);
                }
            }
            images.push(img);
            labels.push(class);
        }
        (images, labels)
    }

    fn toy_model(seed: u64) -> Model {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Flatten::new());
        net.push(Dense::new(16, 8, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, &mut rng));
        Model::new(
            net,
            InputSpec {
                channels: 1,
                size: 4,
                num_classes: 2,
            },
        )
    }

    #[test]
    fn training_reaches_high_accuracy_on_separable_data() {
        let (images, labels) = toy_dataset(60, 1);
        let mut model = toy_model(2);
        let loss = Trainer::new(TrainerConfig {
            epochs: 15,
            ..TrainerConfig::default()
        })
        .fit(&mut model, &images, &labels);
        assert!(loss < 0.2, "final loss {loss}");
        let correct = images
            .iter()
            .zip(&labels)
            .filter(|(img, &l)| model.predict(img).0 == l)
            .count();
        assert!(correct as f32 / 60.0 > 0.9);
    }

    #[test]
    fn sample_weights_bias_learning() {
        // give all the weight to class-0 samples: the model should at least
        // master class 0
        let (images, labels) = toy_dataset(40, 3);
        let weights: Vec<f32> = labels
            .iter()
            .map(|&l| if l == 0 { 1.0 } else { 0.01 })
            .collect();
        let mut model = toy_model(4);
        Trainer::new(TrainerConfig {
            epochs: 12,
            ..TrainerConfig::default()
        })
        .with_sample_weights(weights)
        .fit(&mut model, &images, &labels);
        let class0_correct = images
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l == 0)
            .filter(|(img, &l)| model.predict(img).0 == l)
            .count();
        assert!(class0_correct >= 18, "class-0 correct {class0_correct}/20");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let mut model = toy_model(5);
        Trainer::new(TrainerConfig::default()).fit(
            &mut model,
            &[Tensor::zeros(&[1, 4, 4])],
            &[0, 1],
        );
    }

    #[test]
    fn adam_optimizer_path_learns() {
        let (images, labels) = toy_dataset(60, 11);
        let mut model = toy_model(12);
        let loss = Trainer::new(TrainerConfig {
            epochs: 15,
            lr: 0.01,
            optimizer: OptimizerKind::Adam,
            ..TrainerConfig::default()
        })
        .fit(&mut model, &images, &labels);
        assert!(loss < 0.3, "Adam final loss {loss}");
    }

    #[test]
    fn batched_training_is_bit_identical_to_per_sample() {
        let (images, labels) = toy_dataset(20, 8);
        let base = TrainerConfig {
            epochs: 3,
            seed: 13,
            ..TrainerConfig::default()
        };
        let mut batched = toy_model(9);
        let mut per_sample = toy_model(9);
        assert!(batched.net_mut().supports_batched_train());
        let lb = Trainer::new(TrainerConfig {
            batched: true,
            ..base.clone()
        })
        .fit(&mut batched, &images, &labels);
        let lp = Trainer::new(TrainerConfig {
            batched: false,
            ..base
        })
        .fit(&mut per_sample, &images, &labels);
        assert_eq!(lb.to_bits(), lp.to_bits(), "final losses diverge");
        let collect = |m: &mut Model| {
            let mut bits = Vec::new();
            m.net_mut().visit_params(&mut |p, _| {
                bits.extend(p.data().iter().map(|v| v.to_bits()));
            });
            bits
        };
        assert_eq!(
            collect(&mut batched),
            collect(&mut per_sample),
            "final weights diverge bitwise"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let (images, labels) = toy_dataset(20, 6);
        let config = TrainerConfig {
            epochs: 3,
            seed: 9,
            ..TrainerConfig::default()
        };
        let mut m1 = toy_model(7);
        let mut m2 = toy_model(7);
        let l1 = Trainer::new(config.clone()).fit(&mut m1, &images, &labels);
        let l2 = Trainer::new(config).fit(&mut m2, &images, &labels);
        assert_eq!(l1, l2);
    }
}
