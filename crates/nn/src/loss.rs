//! Softmax cross-entropy loss with its fused gradient.

use remix_tensor::Tensor;

/// Computes softmax cross-entropy between `logits` (rank-1, length = classes)
/// and the `target` class, returning `(loss, d_loss/d_logits)`.
///
/// The gradient is the familiar `softmax(logits) - onehot(target)`.
///
/// # Panics
///
/// Panics if `target` is out of range for the logit vector.
pub fn cross_entropy(logits: &Tensor, target: usize) -> (f32, Tensor) {
    assert!(
        target < logits.len(),
        "target class {target} out of range for {} logits",
        logits.len()
    );
    let probs = logits.softmax();
    let p_t = probs.data()[target].max(1e-12);
    let loss = -p_t.ln();
    let mut grad = probs;
    grad.data_mut()[target] -= 1.0;
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Tensor::from_slice(&[20.0, 0.0, 0.0]);
        let (loss, grad) = cross_entropy(&logits, 0);
        assert!(loss < 1e-3);
        assert!(grad.data()[0].abs() < 1e-3);
    }

    #[test]
    fn uniform_logits_give_ln_classes() {
        let logits = Tensor::zeros(&[4]);
        let (loss, _) = cross_entropy(&logits, 2);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let logits = Tensor::from_slice(&[1.0, -2.0, 0.5]);
        let (_, grad) = cross_entropy(&logits, 1);
        assert!(grad.sum().abs() < 1e-6);
        assert!(grad.data()[1] < 0.0); // target class pulled up
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_slice(&[0.3, -0.8, 1.2]);
        let (loss, grad) = cross_entropy(&logits, 2);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let (lp_loss, _) = cross_entropy(&lp, 2);
            let num = (lp_loss - loss) / eps;
            assert!((num - grad.data()[i]).abs() < 1e-2, "logit grad {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        cross_entropy(&Tensor::zeros(&[3]), 3);
    }
}
