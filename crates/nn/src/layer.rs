use remix_tensor::{Result, Tensor, TensorError};

/// Which caches a forward pass must retain.
///
/// Dropout and batch-norm behave differently between training and inference;
/// beyond that, the mode controls how much backward state the layers keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: dropout active, normalization statistics updated, every
    /// cache needed to accumulate *parameter* gradients is stored.
    Train,
    /// Deterministic forward pass with full backward caches, so a subsequent
    /// [`Layer::backward`] can accumulate parameter gradients (used by
    /// finite-difference tests and diagnostic tooling).
    Eval,
    /// Deterministic forward pass that keeps only what
    /// [`Layer::backward_input`] needs (activation masks, pooling argmaxes,
    /// normalization statistics) and skips the parameter-gradient caches —
    /// im2row patch matrices, cached layer inputs. This is the mode of the
    /// XAI hot path: `predict_proba` never calls backward at all, and
    /// `input_gradient` only needs the input gradient, so neither should pay
    /// training-only memory traffic on every perturbation pass.
    Inference,
}

/// A differentiable network layer.
///
/// Layers cache whatever the backward pass needs during [`Layer::forward`];
/// callers must pair every `backward` with the immediately preceding
/// `forward`. `backward` accumulates weight gradients internally and returns
/// the gradient with respect to the layer *input*, so chaining `backward`
/// through a network yields the input-image gradient required by
/// gradient-based XAI.
///
/// # Batched execution
///
/// [`Layer::forward_batch`] pushes a whole batch of same-shape inputs through
/// the layer at once; convolution layers turn the batch into a single large
/// matrix product. The default implementation loops [`Layer::try_forward`]
/// over the samples so exotic layers keep working unchanged. After a
/// `forward_batch`, the only valid backward call is
/// [`Layer::backward_input_batch`] — and only on layers reporting
/// [`Layer::supports_batched_backward`] — which propagates per-sample input
/// gradients *without* touching parameter gradients. All batched paths are
/// bit-identical to their per-sample counterparts: they run the same kernels
/// in the same per-element accumulation order.
pub trait Layer: Send {
    /// Computes the layer output for `input`, caching backward state
    /// according to `mode`.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Fallible [`Layer::forward`]: layers that validate their input geometry
    /// override this to surface a [`TensorError`] instead of panicking
    /// mid-evaluation. The default wraps `forward` (which may still panic for
    /// layers without an overridden validation path).
    ///
    /// # Errors
    ///
    /// Returns the layer's shape-validation error for mismatched inputs.
    fn try_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        Ok(self.forward(input, mode))
    }

    /// Computes outputs for a batch of same-shape inputs.
    ///
    /// The default loops [`Layer::try_forward`] over the samples, leaving the
    /// single-sample caches holding the *last* sample's state — which is why
    /// per-sample `backward` after a default `forward_batch` is invalid and
    /// batched backward is gated on [`Layer::supports_batched_backward`].
    /// Layers overriding this with a genuinely batched implementation must
    /// keep bit-identical outputs and maintain per-sample caches for
    /// [`Layer::backward_input_batch`] (except in [`Mode::Inference`], where
    /// only the input-gradient caches are required).
    ///
    /// # Errors
    ///
    /// Returns the first per-sample validation error.
    fn forward_batch(&mut self, inputs: &[Tensor], mode: Mode) -> Result<Vec<Tensor>> {
        inputs.iter().map(|x| self.try_forward(x, mode)).collect()
    }

    /// Propagates `grad_out` (gradient w.r.t. the last forward output) and
    /// returns the gradient w.r.t. the last forward input. Accumulates
    /// parameter gradients as a side effect.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Parameter-gradient-only backward: like [`Layer::backward`] but skips
    /// computing the gradient w.r.t. the layer input, which the caller is
    /// about to discard. Only the *root* layer of a training step qualifies —
    /// its input gradient is the image gradient, consumed by nothing — so
    /// `Sequential::backward_train` calls this on its first layer and the
    /// full `backward` everywhere else. Parameter gradients must accumulate
    /// through the exact chains of `backward`, so skipping the input product
    /// never changes the trained weights. The default runs the full
    /// `backward` and drops the result.
    fn backward_params_only(&mut self, grad_out: &Tensor) {
        let _ = self.backward(grad_out);
    }

    /// Batched [`Layer::backward_params_only`]: accumulates parameter
    /// gradients for the batch of the immediately preceding
    /// [`Layer::forward_batch`] without producing input gradients. Same
    /// root-layer-only contract; the default runs the full
    /// [`Layer::backward_batch`] and drops the gradients.
    ///
    /// # Errors
    ///
    /// Returns whatever the layer's `backward_batch` contract returns.
    fn backward_batch_params_only(&mut self, grads_out: &[Tensor]) -> Result<()> {
        self.backward_batch(grads_out).map(|_| ())
    }

    /// Input-gradient-only backward: like [`Layer::backward`] but skips the
    /// parameter-gradient accumulation, which XAI input gradients never
    /// consume. Layers with expensive weight-gradient products (convolutions,
    /// dense layers) override this; the default falls back to the full
    /// `backward`.
    ///
    /// Valid after a [`Layer::forward`] in any mode, including
    /// [`Mode::Inference`].
    fn backward_input(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward(grad_out)
    }

    /// Batched [`Layer::backward_input`]: per-sample input gradients for the
    /// batch of the immediately preceding [`Layer::forward_batch`].
    ///
    /// Only valid on layers reporting [`Layer::supports_batched_backward`];
    /// the default returns [`TensorError::Unsupported`] so a mis-wired caller
    /// fails loudly instead of silently using stale caches.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Unsupported`] unless overridden.
    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        let _ = grads_out;
        Err(TensorError::Unsupported {
            op: "backward_input_batch",
            by: self.name(),
        })
    }

    /// Whether this layer implements the batched backward contract
    /// ([`Layer::forward_batch`] keeping per-sample caches +
    /// [`Layer::backward_input_batch`]). Defaults to `false`; callers fall
    /// back to per-sample forward/backward for layers that opt out.
    fn supports_batched_backward(&self) -> bool {
        false
    }

    /// Batched [`Layer::backward`]: per-sample input gradients for the batch
    /// of the immediately preceding [`Layer::forward_batch`] in
    /// [`Mode::Train`] / [`Mode::Eval`], *with* parameter-gradient
    /// accumulation.
    ///
    /// The bit-identity contract is strict: parameter gradients must
    /// accumulate per sample, in batch order, through the same per-element
    /// accumulation chains as `batch_size` calls of [`Layer::backward`] —
    /// layers may batch the input-gradient product (each output element's
    /// chain stays within one sample) but must *not* fuse the per-sample
    /// parameter-gradient sums into one long chain.
    ///
    /// Only valid on layers reporting [`Layer::supports_batched_train`]; the
    /// default returns [`TensorError::Unsupported`] so a mis-wired caller
    /// fails loudly instead of silently using stale caches.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Unsupported`] unless overridden.
    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        let _ = grads_out;
        Err(TensorError::Unsupported {
            op: "backward_batch",
            by: self.name(),
        })
    }

    /// Whether this layer implements the batched *training* contract
    /// ([`Layer::forward_batch`] in [`Mode::Train`] keeping the
    /// parameter-gradient caches + [`Layer::backward_batch`]). Defaults to
    /// `false`; `Trainer::fit` falls back to the per-sample loop for networks
    /// containing layers that opt out.
    fn supports_batched_train(&self) -> bool {
        false
    }

    /// Visits every `(parameter, gradient)` pair for optimizers.
    ///
    /// This is the single chokepoint through which parameters are mutated
    /// (optimizer steps, state loads), so layers holding prepacked weight
    /// operands drop them at the top of their override — a freeze can never
    /// go stale unnoticed (see [`Layer::prepare_inference`]).
    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        let _ = visit;
    }

    /// Freezes the layer for steady-state inference: prepacks weight-static
    /// GEMM operands (the `Tensor::prepack_*` family) so the serving and XAI
    /// sweeps skip the per-call weight pack. The contract is strict
    /// bit-identity — a frozen layer must produce byte-identical outputs and
    /// input gradients to an unfrozen one — and packs are invalidated by any
    /// parameter mutation (every mutation flows through
    /// [`Layer::visit_params`]), so training after a freeze silently falls
    /// back to fresh packing instead of consuming a stale pack. Freezing is
    /// idempotent; the default is a no-op for layers with no weight-static
    /// products.
    fn prepare_inference(&mut self) {}

    /// Short human-readable layer name (for architecture summaries).
    fn name(&self) -> &'static str;

    /// Deep copy as a boxed trait object.
    ///
    /// This is what makes [`Sequential`](crate::Sequential) (and therefore
    /// models and ensembles) cloneable, so parallel evaluation can hand each
    /// worker thread its own copy of the mutable forward/backward caches.
    fn clone_boxed(&self) -> Box<dyn Layer>;

    /// Number of trainable scalars in this layer.
    fn param_count(&self) -> usize {
        0
    }

    /// Zeroes all accumulated parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |_, g| {
            for v in g.data_mut() {
                *v = 0.0;
            }
        });
    }
}
