use remix_tensor::Tensor;

/// Whether a forward pass is part of training or inference.
///
/// Dropout and batch-norm behave differently between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: dropout active, normalization statistics updated.
    Train,
    /// Inference: deterministic forward pass.
    Eval,
}

/// A differentiable network layer.
///
/// Layers cache whatever the backward pass needs during [`Layer::forward`];
/// callers must pair every `backward` with the immediately preceding
/// `forward`. `backward` accumulates weight gradients internally and returns
/// the gradient with respect to the layer *input*, so chaining `backward`
/// through a network yields the input-image gradient required by
/// gradient-based XAI.
pub trait Layer: Send {
    /// Computes the layer output for `input`, caching backward state.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Propagates `grad_out` (gradient w.r.t. the last forward output) and
    /// returns the gradient w.r.t. the last forward input. Accumulates
    /// parameter gradients as a side effect.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every `(parameter, gradient)` pair for optimizers.
    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        let _ = visit;
    }

    /// Short human-readable layer name (for architecture summaries).
    fn name(&self) -> &'static str;

    /// Deep copy as a boxed trait object.
    ///
    /// This is what makes [`Sequential`](crate::Sequential) (and therefore
    /// models and ensembles) cloneable, so parallel evaluation can hand each
    /// worker thread its own copy of the mutable forward/backward caches.
    fn clone_boxed(&self) -> Box<dyn Layer>;

    /// Number of trainable scalars in this layer.
    fn param_count(&self) -> usize {
        0
    }

    /// Zeroes all accumulated parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |_, g| {
            for v in g.data_mut() {
                *v = 0.0;
            }
        });
    }
}
