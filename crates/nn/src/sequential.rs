use crate::{Layer, Mode};
use remix_tensor::{Result, Tensor};

/// Ordered composition of layers; itself a [`Layer`], so residual blocks can
/// nest `Sequential` bodies.
///
/// # Example
///
/// ```
/// use remix_nn::{layers::Relu, Layer, Mode, Sequential};
/// use remix_tensor::Tensor;
///
/// let mut net = Sequential::new();
/// net.push(Relu::new());
/// let y = net.forward(&Tensor::from_slice(&[-1.0, 1.0]), Mode::Eval);
/// assert_eq!(y.data(), &[0.0, 1.0]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Names of all layers in order (architecture summary).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Training backward: chains [`Layer::backward`] through the layers in
    /// reverse, but asks the first (input-side) layer for parameter gradients
    /// only — its input gradient is the image gradient, which a training step
    /// discards, and for a first convolution that gradient costs a full GEMM
    /// plus an overlap fold. Parameter gradients are accumulated through the
    /// exact chains of [`Layer::backward`], so the trained weights are
    /// bit-identical.
    ///
    /// Only `Trainer::fit` should use this: XAI paths need the image gradient
    /// (they call [`Layer::backward_input`]), and `Sequential` bodies nested
    /// inside residual blocks must keep returning their input gradient to
    /// feed the skip-connection sum (they are reached through the
    /// [`Layer::backward`] of the enclosing block, which this method never
    /// short-circuits).
    pub fn backward_train(&mut self, grad_out: &Tensor) {
        let Some((first, rest)) = self.layers.split_first_mut() else {
            return;
        };
        let mut g = grad_out.clone();
        for layer in rest.iter_mut().rev() {
            g = layer.backward(&g);
        }
        first.backward_params_only(&g);
    }

    /// Batched [`Sequential::backward_train`]: chains
    /// [`Layer::backward_batch`] in reverse and finishes with the first
    /// layer's [`Layer::backward_batch_params_only`]. Same root-only
    /// contract, same bit-identical weights.
    ///
    /// # Errors
    ///
    /// Propagates the first layer-level batched-backward error.
    pub fn backward_batch_train(&mut self, grads_out: &[Tensor]) -> Result<()> {
        let Some((first, rest)) = self.layers.split_first_mut() else {
            return Ok(());
        };
        let mut gs = grads_out.to_vec();
        for layer in rest.iter_mut().rev() {
            gs = layer.backward_batch(&gs)?;
        }
        first.backward_batch_params_only(&gs)
    }
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Self {
            layers: self.layers.iter().map(|l| l.clone_boxed()).collect(),
        }
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({:?})", self.layer_names())
    }
}

impl Layer for Sequential {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn try_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.try_forward(&x, mode)?;
        }
        Ok(x)
    }

    fn forward_batch(&mut self, inputs: &[Tensor], mode: Mode) -> Result<Vec<Tensor>> {
        let _fwd = remix_trace::span("forward_batch");
        let mut xs = inputs.to_vec();
        for layer in &mut self.layers {
            let _layer = remix_trace::span(layer.name());
            xs = layer.forward_batch(&xs, mode)?;
        }
        Ok(xs)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn backward_params_only(&mut self, grad_out: &Tensor) {
        // A Sequential used as a root layer can skip its own first layer's
        // input gradient too.
        self.backward_train(grad_out);
    }

    fn backward_input(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward_input(&g);
        }
        g
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        let mut gs = grads_out.to_vec();
        for layer in self.layers.iter_mut().rev() {
            gs = layer.backward_input_batch(&gs)?;
        }
        Ok(gs)
    }

    fn supports_batched_backward(&self) -> bool {
        self.layers.iter().all(|l| l.supports_batched_backward())
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        let mut gs = grads_out.to_vec();
        for layer in self.layers.iter_mut().rev() {
            gs = layer.backward_batch(&gs)?;
        }
        Ok(gs)
    }

    fn backward_batch_params_only(&mut self, grads_out: &[Tensor]) -> Result<()> {
        self.backward_batch_train(grads_out)
    }

    fn supports_batched_train(&self) -> bool {
        self.layers.iter().all(|l| l.supports_batched_train())
    }

    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(visit);
        }
    }

    fn prepare_inference(&mut self) {
        for layer in &mut self.layers {
            layer.prepare_inference();
        }
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, Relu};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn composes_layers_in_order() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 3, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(3, 2, &mut rng));
        assert_eq!(net.len(), 3);
        let y = net.forward(&Tensor::from_slice(&[1.0, -1.0]), Mode::Eval);
        assert_eq!(y.len(), 2);
        assert_eq!(net.layer_names(), vec!["Dense", "ReLU", "Dense"]);
    }

    #[test]
    fn backward_chains_through_all_layers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 4, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(4, 2, &mut rng));
        let x = Tensor::from_slice(&[0.5, -0.3, 0.8]);
        let y = net.forward(&x, Mode::Train);
        let dx = net.backward(&Tensor::ones(&[2]));
        assert_eq!(dx.len(), 3);
        // finite-difference check on the whole network
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = net.forward(&xp, Mode::Train);
            let num = (yp.sum() - y.sum()) / eps;
            assert!((num - dx.data()[i]).abs() < 1e-2, "grad at {i}");
        }
    }

    fn conv_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Conv2d::new((1, 6, 6), 2, 3, 1, 1, &mut rng));
        net.push(Relu::new());
        net.push(Flatten::new());
        net.push(Dense::new(72, 3, &mut rng));
        net
    }

    fn grad_bits(net: &mut Sequential) -> Vec<u32> {
        let mut bits = Vec::new();
        net.visit_params(&mut |_, g| bits.extend(g.data().iter().map(|v| v.to_bits())));
        bits
    }

    #[test]
    fn backward_train_accumulates_the_same_param_grads_as_backward() {
        let mut rng = StdRng::seed_from_u64(21);
        let x = Tensor::randn(&[1, 6, 6], 1.0, &mut rng);
        let g = Tensor::randn(&[3], 1.0, &mut rng);
        let mut full = conv_net(20);
        let mut skip = conv_net(20);
        full.forward(&x, Mode::Train);
        skip.forward(&x, Mode::Train);
        full.backward(&g);
        skip.backward_train(&g);
        assert_eq!(grad_bits(&mut full), grad_bits(&mut skip));
    }

    #[test]
    fn backward_batch_train_accumulates_the_same_param_grads_as_backward_batch() {
        let mut rng = StdRng::seed_from_u64(23);
        let xs: Vec<Tensor> = (0..4)
            .map(|_| Tensor::randn(&[1, 6, 6], 1.0, &mut rng))
            .collect();
        let gs: Vec<Tensor> = (0..4).map(|_| Tensor::randn(&[3], 1.0, &mut rng)).collect();
        let mut full = conv_net(22);
        let mut skip = conv_net(22);
        full.forward_batch(&xs, Mode::Train).unwrap();
        skip.forward_batch(&xs, Mode::Train).unwrap();
        full.backward_batch(&gs).unwrap();
        skip.backward_batch_train(&gs).unwrap();
        assert_eq!(grad_bits(&mut full), grad_bits(&mut skip));
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, &mut rng)); // 6 params
        net.push(Dense::new(2, 1, &mut rng)); // 3 params
        assert_eq!(net.param_count(), 9);
    }
}
