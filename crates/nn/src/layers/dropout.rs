use crate::{Layer, Mode};
use rand::{rngs::StdRng, Rng, SeedableRng};
use remix_tensor::{Result, Tensor, TensorError};

/// Inverted dropout: in training mode zeroes activations with probability `p`
/// and rescales survivors by `1/(1-p)`; identity in evaluation mode.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
    batch_masks: Vec<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0, 1), got {p}"
        );
        Self {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
            batch_masks: Vec::new(),
        }
    }

    fn draw_mask(&mut self, len: usize) -> Vec<f32> {
        let keep = 1.0 - self.p;
        (0..len)
            .map(|_| {
                if self.rng.gen::<f32>() < self.p {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect()
    }
}

impl Layer for Dropout {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        match mode {
            Mode::Eval | Mode::Inference => {
                self.mask = None;
                input.clone()
            }
            Mode::Train => {
                let mask = self.draw_mask(input.len());
                let data = input
                    .data()
                    .iter()
                    .zip(&mask)
                    .map(|(&v, &m)| v * m)
                    .collect();
                self.mask = Some(mask);
                Tensor::from_vec(data, input.shape()).expect("same shape")
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => {
                let data = grad_out
                    .data()
                    .iter()
                    .zip(mask)
                    .map(|(&g, &m)| g * m)
                    .collect();
                Tensor::from_vec(data, grad_out.shape()).expect("same shape")
            }
        }
    }

    fn forward_batch(&mut self, inputs: &[Tensor], mode: Mode) -> Result<Vec<Tensor>> {
        match mode {
            Mode::Eval | Mode::Inference => {
                self.mask = None;
                self.batch_masks.clear();
                Ok(inputs.to_vec())
            }
            Mode::Train => {
                // Masks are drawn sample-by-sample in batch order, consuming
                // the RNG stream exactly as a per-sample forward loop would —
                // so batched training stays bit-identical to per-sample
                // training (including the random masks).
                self.mask = None;
                self.batch_masks = inputs.iter().map(|x| self.draw_mask(x.len())).collect();
                inputs
                    .iter()
                    .zip(&self.batch_masks)
                    .map(|(x, mask)| {
                        let data = x.data().iter().zip(mask).map(|(&v, &m)| v * m).collect();
                        Tensor::from_vec(data, x.shape())
                    })
                    .collect()
            }
        }
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        if self.batch_masks.is_empty() {
            // Identity in eval/inference mode.
            return Ok(grads_out.to_vec());
        }
        if grads_out.len() != self.batch_masks.len() {
            return Err(TensorError::ShapeMismatch {
                left: vec![grads_out.len()],
                right: vec![self.batch_masks.len()],
                op: "dropout batched backward",
            });
        }
        grads_out
            .iter()
            .zip(&self.batch_masks)
            .map(|(g, mask)| {
                let data = g.data().iter().zip(mask).map(|(&g, &m)| g * m).collect();
                Tensor::from_vec(data, g.shape())
            })
            .collect()
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // No parameters: applying the per-sample masks is the whole training
        // backward.
        self.backward_input_batch(grads_out)
    }

    fn supports_batched_train(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, Mode::Eval);
        assert_eq!(y, x);
    }

    #[test]
    fn train_mode_drops_and_rescales() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, Mode::Train);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f32 / 10_000.0 - 0.5).abs() < 0.05);
        // survivors are scaled so the expectation is preserved
        assert!((y.mean() - 1.0).abs() < 0.05);
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[1000]);
        let y = d.forward(&x, Mode::Train);
        let dx = d.backward(&Tensor::ones(&[1000]));
        // gradient is zero exactly where the forward output was zero
        for (o, g) in y.data().iter().zip(dx.data()) {
            assert_eq!(*o == 0.0, *g == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn rejects_invalid_probability() {
        Dropout::new(1.0, 4);
    }
}
