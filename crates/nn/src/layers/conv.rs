use crate::{Layer, Mode};
use rand::Rng;
use remix_tensor::{
    gemm_accum_ab, im2row_batch_into, im2row_into, row2im, row2im_batch, Conv2dGeometry,
    PackedOperand, Result, Tensor, TensorError,
};

/// 2-D convolution over `[C, H, W]` inputs, lowered to a matrix product via
/// a row-major patch matrix (im2row).
///
/// Weights are stored as `[filters, C*k*k]` and patches as
/// `[out_h*out_w, C*k*k]` rows, so the forward pass is a transpose-free
/// `W ·ᵃᵇᵗ patches` and both backward products are plain rank-2 matmuls. A
/// batch of inputs lowers to one `[B*out_h*out_w, C*k*k]` patch matrix whose
/// per-sample blocks are contiguous *rows* — the unfold writes, the
/// per-sample dW windows and the input-gradient fold all touch memory
/// sequentially, and the fused products are bit-identical to per-sample ones
/// because each output element keeps its own ascending-k chain.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Tensor, // [F, C*k*k]
    bias: Tensor,   // [F]
    grad_w: Tensor,
    grad_b: Tensor,
    geo: Conv2dGeometry,
    filters: usize,
    cached_rows: Tensor, // [B*out_h*out_w, C*k*k] patch rows from forward
    scratch_rows: Vec<f32>,
    scratch: ConvScratch,
    /// Prepacked weight operands from [`Layer::prepare_inference`]; dropped
    /// on any parameter mutation (see [`Layer::visit_params`]).
    packs: Option<ConvPacks>,
}

/// Both roles the frozen `[F, C·k·k]` weight plays: `fwd` is the A-side of
/// the forward `W ·ᵃᵇᵗ patches` product, `bwd` the B-side (panel layout) of
/// the input-gradient `gᵀ · W` product.
#[derive(Debug, Clone)]
struct ConvPacks {
    fwd: PackedOperand,
    bwd: PackedOperand,
}

/// Reusable buffers for the batched GEMMs. Each GEMM call site owns its pair
/// so the sizes stay stable across training steps and the `_into` kernels
/// never reallocate or zero-fill in steady state.
#[derive(Debug, Clone, Default)]
struct ConvScratch {
    fwd_out: Vec<f32>,    // [F, B·spatial] forward product
    fwd_packed: Vec<f32>, // packed patch-row panels for the forward GEMM
    gcat: Vec<f32>,       // [F, B·spatial] concatenated output gradients
    drows: Vec<f32>,      // [B·spatial, patch] patch-row gradients
    dx_packed: Vec<f32>,  // packed weight panels for the dX GEMM
    dw_packed: Vec<f32>,  // packed patch-row panels for the per-sample dW GEMMs
}

impl Conv2d {
    /// Creates a convolution with square `kernel`, `stride` and `pad` over
    /// `in_shape = (channels, height, width)` producing `filters` channels.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is unrealizable (kernel larger than padded
    /// input or zero stride).
    pub fn new(
        in_shape: (usize, usize, usize),
        filters: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let geo = Conv2dGeometry {
            in_channels: in_shape.0,
            in_h: in_shape.1,
            in_w: in_shape.2,
            kernel,
            stride,
            pad,
        };
        assert!(geo.is_valid(), "invalid conv geometry {geo:?}");
        let fan_in = geo.patch_len();
        let std = (2.0 / fan_in as f32).sqrt();
        Self {
            weight: Tensor::randn(&[filters, fan_in], std, rng),
            bias: Tensor::zeros(&[filters]),
            grad_w: Tensor::zeros(&[filters, fan_in]),
            grad_b: Tensor::zeros(&[filters]),
            geo,
            filters,
            cached_rows: Tensor::default(),
            scratch_rows: Vec::new(),
            scratch: ConvScratch::default(),
            packs: None,
        }
    }

    /// Reclaims the patch-row buffer for the next unfold: the inference path
    /// parks it in `scratch_rows`, the training path leaves it inside the
    /// previous step's `cached_rows`.
    fn take_patch_buf(&mut self) -> Vec<f32> {
        let buf = std::mem::take(&mut self.scratch_rows);
        if buf.is_empty() {
            std::mem::take(&mut self.cached_rows).into_vec()
        } else {
            buf
        }
    }

    /// Output shape `(filters, out_h, out_w)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        (self.filters, self.geo.out_h(), self.geo.out_w())
    }

    /// Input gradient `row2im(gᵀ · W)` — shared by `backward` and
    /// `backward_input`. `matmul_at_b` reads `gᵀ` straight out of the
    /// `[F, spatial]` storage, so no transpose copy is materialized, and the
    /// `[spatial, patch]` result feeds the sequential-read row fold.
    fn input_grad_from(&self, g: &Tensor) -> Result<Tensor> {
        let drows = match &self.packs {
            Some(p) => {
                let mut out = Vec::new();
                p.bwd.matmul_at_b_rhs_prepacked_into(g, &mut out)?;
                Tensor::from_vec(out, &[g.shape()[1], self.geo.patch_len()])?
            }
            None => g.matmul_at_b(&self.weight)?,
        };
        row2im(&drows, &self.geo)
    }

    /// Concatenates per-sample output gradients into the batched layout
    /// `[F, B·spatial]` (sample `bi` at columns `bi·spatial..`), validating
    /// shapes. Reuses the `gcat` scratch allocation; every slot is written.
    fn concat_grads(&mut self, grads_out: &[Tensor]) -> Result<Tensor> {
        let batch = grads_out.len();
        let (oh, ow) = (self.geo.out_h(), self.geo.out_w());
        let spatial = oh * ow;
        let total = batch * spatial;
        let mut gcat = std::mem::take(&mut self.scratch.gcat);
        if gcat.len() != self.filters * total {
            gcat.clear();
            gcat.resize(self.filters * total, 0.0);
        }
        for (bi, g) in grads_out.iter().enumerate() {
            if g.len() != self.filters * spatial {
                self.scratch.gcat = gcat;
                return Err(TensorError::ShapeMismatch {
                    left: g.shape().to_vec(),
                    right: vec![self.filters, oh, ow],
                    op: "conv batched backward",
                });
            }
            for f in 0..self.filters {
                let dst = f * total + bi * spatial;
                gcat[dst..dst + spatial].copy_from_slice(&g.data()[f * spatial..(f + 1) * spatial]);
            }
        }
        Tensor::from_vec(gcat, &[self.filters, total])
    }

    /// `dW += g · rows ; db += row sums of g` — the parameter half of
    /// [`Layer::backward`], against the cached `[spatial, patch]` rows. The
    /// `[spatial, patch]` layout makes the dW product a plain matmul with no
    /// transpose copy and contiguous B packing.
    fn accumulate_param_grads(&mut self, g: &Tensor) {
        let spatial = self.geo.out_h() * self.geo.out_w();
        let dw = g.matmul(&self.cached_rows).expect("dW matmul");
        self.grad_w.add_assign(&dw).expect("dW shape");
        let gb = self.grad_b.data_mut();
        for (f, gbf) in gb.iter_mut().enumerate().take(self.filters) {
            *gbf += g.data()[f * spatial..(f + 1) * spatial].iter().sum::<f32>();
        }
    }

    /// dW/db for a whole batch, accumulated per sample in batch order — the
    /// exact chains of `batch_size` [`Layer::backward`] calls. Each sample's
    /// dW contribution is a plain A·B against its contiguous row window of
    /// the cached patch matrix, computed as a complete register chain then
    /// added to `grad_w`, matching `dw = g·rows; grad_w += dw` bitwise.
    /// Callers must have validated every gradient's length.
    fn accumulate_batch_param_grads(&mut self, grads_out: &[Tensor], spatial: usize, patch: usize) {
        let mut packed = std::mem::take(&mut self.scratch.dw_packed);
        for (bi, gs) in grads_out.iter().enumerate() {
            gemm_accum_ab(
                gs.data(),
                &self.cached_rows.data()[bi * spatial * patch..(bi + 1) * spatial * patch],
                self.grad_w.data_mut(),
                self.filters,
                spatial,
                patch,
                &mut packed,
            );
            let gb = self.grad_b.data_mut();
            for (f, gbf) in gb.iter_mut().enumerate().take(self.filters) {
                *gbf += gs.data()[f * spatial..(f + 1) * spatial]
                    .iter()
                    .sum::<f32>();
            }
        }
        self.scratch.dw_packed = packed;
    }

    /// Checks the cached patch matrix covers `batch` samples and that every
    /// per-sample gradient has the conv's output length. Shared by the
    /// batched backward entry points, all of which read raw per-sample
    /// windows after this.
    fn validate_batch_grads(
        &self,
        grads_out: &[Tensor],
        spatial: usize,
        patch: usize,
    ) -> Result<()> {
        assert_eq!(
            self.cached_rows.len(),
            patch * grads_out.len() * spatial,
            "backward_batch batch size must match the preceding forward_batch"
        );
        for g in grads_out {
            if g.len() != self.filters * spatial {
                return Err(TensorError::ShapeMismatch {
                    left: g.shape().to_vec(),
                    right: vec![self.filters, self.geo.out_h(), self.geo.out_w()],
                    op: "conv batched backward",
                });
            }
        }
        Ok(())
    }

    /// Shared tail of both batched backward paths: `dX = row2im(gcatᵀ · W)`
    /// as one large transpose-free GEMM into reused scratch, then the
    /// per-sample row fold. Returns `gcat`'s allocation to the scratch pool.
    fn batched_input_grads(&mut self, gcat: Tensor, batch: usize) -> Result<Vec<Tensor>> {
        let mut drows = std::mem::take(&mut self.scratch.drows);
        let gemm = match &self.packs {
            Some(p) => p.bwd.matmul_at_b_rhs_prepacked_into(&gcat, &mut drows),
            None => gcat.matmul_at_b_into(&self.weight, &mut drows, &mut self.scratch.dx_packed),
        };
        self.scratch.gcat = gcat.into_vec();
        gemm?;
        let total = drows.len() / self.geo.patch_len();
        let drows_t = Tensor::from_vec(drows, &[total, self.geo.patch_len()])?;
        let folded = row2im_batch(&drows_t, &self.geo, batch);
        self.scratch.drows = drows_t.into_vec();
        folded
    }
}

impl Layer for Conv2d {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.try_forward(input, mode)
            .expect("conv input matches geometry")
    }

    fn try_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut buf = self.take_patch_buf();
        if let Err(e) = im2row_into(input, &self.geo, &mut buf) {
            self.scratch_rows = buf;
            return Err(e);
        }
        let (oh, ow) = (self.geo.out_h(), self.geo.out_w());
        let spatial = oh * ow;
        let rows = Tensor::from_vec(buf, &[spatial, self.geo.patch_len()])?;
        // `W ·ᵃᵇᵗ rows` reads the patch rows straight out of their storage —
        // same products, same ascending-patch chains as the column-layout
        // `W · cols`, so forward bits are unchanged by the row layout.
        let mut out = Vec::new();
        match &self.packs {
            Some(p) => {
                p.fwd
                    .matmul_a_bt_prepacked_into(&rows, &mut out, &mut self.scratch.fwd_packed)?
            }
            None => self
                .weight
                .matmul_a_bt_into(&rows, &mut out, &mut self.scratch.fwd_packed)?,
        }
        for f in 0..self.filters {
            let b = self.bias.data()[f];
            for v in &mut out[f * spatial..(f + 1) * spatial] {
                *v += b;
            }
        }
        if mode == Mode::Inference {
            // The input gradient only needs the weights; recycle the patch
            // matrix as scratch instead of caching it.
            self.scratch_rows = rows.into_vec();
        } else {
            self.cached_rows = rows;
        }
        Tensor::from_vec(out, &[self.filters, oh, ow])
    }

    fn forward_batch(&mut self, inputs: &[Tensor], mode: Mode) -> Result<Vec<Tensor>> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let mut buf = self.take_patch_buf();
        if let Err(e) = im2row_batch_into(inputs, &self.geo, &mut buf) {
            self.scratch_rows = buf;
            return Err(e);
        }
        let batch = inputs.len();
        let (oh, ow) = (self.geo.out_h(), self.geo.out_w());
        let spatial = oh * ow;
        let total = batch * spatial;
        let rows = Tensor::from_vec(buf, &[total, self.geo.patch_len()])?;
        // One big product: sample b occupies output columns
        // b*spatial..(b+1)*spatial. Each output element keeps its own
        // ascending-patch chain, so every element is bit-identical to the
        // per-sample product.
        let mut big = std::mem::take(&mut self.scratch.fwd_out);
        let gemm = match &self.packs {
            Some(p) => {
                p.fwd
                    .matmul_a_bt_prepacked_into(&rows, &mut big, &mut self.scratch.fwd_packed)
            }
            None => self
                .weight
                .matmul_a_bt_into(&rows, &mut big, &mut self.scratch.fwd_packed),
        };
        if mode == Mode::Inference {
            self.scratch_rows = rows.into_vec();
        } else {
            // Train/Eval keep the batched patch matrix: backward_batch reads
            // per-sample row windows of it for the dW accumulation.
            self.cached_rows = rows;
        }
        if let Err(e) = gemm {
            self.scratch.fwd_out = big;
            return Err(e);
        }
        let mut outs = Vec::with_capacity(batch);
        for bi in 0..batch {
            let mut sample = Vec::with_capacity(self.filters * spatial);
            for f in 0..self.filters {
                let base = f * total + bi * spatial;
                let b = self.bias.data()[f];
                sample.extend(big[base..base + spatial].iter().map(|&v| v + b));
            }
            outs.push(Tensor::from_vec(sample, &[self.filters, oh, ow])?);
        }
        self.scratch.fwd_out = big;
        Ok(outs)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (oh, ow) = (self.geo.out_h(), self.geo.out_w());
        let g = grad_out
            .reshape(&[self.filters, oh * ow])
            .expect("grad shape matches conv output");
        self.accumulate_param_grads(&g);
        // dx = row2im(gᵀ · W)
        self.input_grad_from(&g).expect("row2im geometry")
    }

    fn backward_params_only(&mut self, grad_out: &Tensor) {
        // Root-layer training backward: skip the dX GEMM and the overlap
        // fold entirely — the image gradient is never consumed.
        let g = grad_out
            .reshape(&[self.filters, self.geo.out_h() * self.geo.out_w()])
            .expect("grad shape matches conv output");
        self.accumulate_param_grads(&g);
    }

    fn backward_input(&mut self, grad_out: &Tensor) -> Tensor {
        let (oh, ow) = (self.geo.out_h(), self.geo.out_w());
        let g = grad_out
            .reshape(&[self.filters, oh * ow])
            .expect("grad shape matches conv output");
        self.input_grad_from(&g).expect("row2im geometry")
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        if grads_out.is_empty() {
            return Ok(Vec::new());
        }
        let batch = grads_out.len();
        let g = self.concat_grads(grads_out)?;
        self.batched_input_grads(g, batch)
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        if grads_out.is_empty() {
            return Ok(Vec::new());
        }
        let batch = grads_out.len();
        let spatial = self.geo.out_h() * self.geo.out_w();
        let patch = self.geo.patch_len();
        self.validate_batch_grads(grads_out, spatial, patch)?;
        self.accumulate_batch_param_grads(grads_out, spatial, patch);
        // dX is one large transpose-free GEMM + batched row fold: each output
        // row belongs to exactly one sample, so per-element chains match the
        // per-sample input gradient.
        let g = self.concat_grads(grads_out)?;
        self.batched_input_grads(g, batch)
    }

    fn backward_batch_params_only(&mut self, grads_out: &[Tensor]) -> Result<()> {
        if grads_out.is_empty() {
            return Ok(());
        }
        let spatial = self.geo.out_h() * self.geo.out_w();
        let patch = self.geo.patch_len();
        self.validate_batch_grads(grads_out, spatial, patch)?;
        // Root-layer training backward: the per-sample dW/db accumulation
        // with the gradient concat, the dX GEMM and the batched fold all
        // skipped — the image gradients are never consumed.
        self.accumulate_batch_param_grads(grads_out, spatial, patch);
        Ok(())
    }

    fn supports_batched_train(&self) -> bool {
        true
    }

    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        // Parameters are about to be mutated: any frozen weight pack is stale.
        self.packs = None;
        visit(&mut self.weight, &mut self.grad_w);
        visit(&mut self.bias, &mut self.grad_b);
    }

    fn prepare_inference(&mut self) {
        self.packs = Some(ConvPacks {
            fwd: self.weight.prepack_a().expect("conv weight is rank 2"),
            bwd: self.weight.prepack_b().expect("conv weight is rank 2"),
        });
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_matches_manual_convolution() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new((1, 3, 3), 1, 2, 1, 0, &mut rng);
        conv.weight = Tensor::ones(&[1, 4]);
        conv.bias = Tensor::from_slice(&[1.0]);
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3]).unwrap();
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.data(), &[13.0, 17.0, 25.0, 29.0]); // patch sums + bias
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new((2, 4, 4), 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train);
        let dx = conv.backward(&Tensor::ones(y.shape()));
        let eps = 1e-2;
        for &i in &[0usize, 7, 20, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = conv.forward(&xp, Mode::Train);
            let num = (yp.sum() - y.sum()) / eps;
            assert!(
                (num - dx.data()[i]).abs() < 5e-2,
                "input grad at {i}: fd={num} analytic={}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new((1, 4, 4), 2, 3, 1, 0, &mut rng);
        let x = Tensor::randn(&[1, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train);
        conv.zero_grads();
        conv.backward(&Tensor::ones(y.shape()));
        let analytic = conv.grad_w.clone();
        let eps = 1e-2;
        for &i in &[0usize, 5, 11] {
            let mut pert = conv.weight.clone();
            pert.data_mut()[i] += eps;
            let orig = std::mem::replace(&mut conv.weight, pert);
            let yp = conv.forward(&x, Mode::Train);
            conv.weight = orig;
            let num = (yp.sum() - y.sum()) / eps;
            assert!(
                (num - analytic.data()[i]).abs() < 5e-2,
                "weight grad at {i}"
            );
        }
    }

    #[test]
    fn stride_and_padding_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let conv = Conv2d::new((3, 8, 8), 6, 3, 2, 1, &mut rng);
        assert_eq!(conv.out_shape(), (6, 4, 4));
    }

    #[test]
    fn try_forward_surfaces_geometry_errors() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv2d::new((1, 3, 3), 1, 2, 1, 0, &mut rng);
        let bad = Tensor::zeros(&[1, 4, 4]);
        assert!(conv.try_forward(&bad, Mode::Eval).is_err());
        // The layer stays usable after a rejected input.
        let x = Tensor::zeros(&[1, 3, 3]);
        assert!(conv.try_forward(&x, Mode::Eval).is_ok());
    }

    #[test]
    fn batched_forward_and_backward_are_bit_identical() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut conv = Conv2d::new((2, 5, 5), 4, 3, 2, 1, &mut rng);
        let inputs: Vec<Tensor> = (0..3)
            .map(|_| Tensor::randn(&[2, 5, 5], 1.0, &mut rng))
            .collect();
        let grads: Vec<Tensor> = (0..3)
            .map(|_| Tensor::randn(&[4, 3, 3], 1.0, &mut rng))
            .collect();
        let mut seq_out = Vec::new();
        let mut seq_dx = Vec::new();
        for (x, g) in inputs.iter().zip(&grads) {
            seq_out.push(conv.forward(x, Mode::Inference));
            seq_dx.push(conv.backward_input(g));
        }
        let bat_out = conv.forward_batch(&inputs, Mode::Inference).unwrap();
        let bat_dx = conv.backward_input_batch(&grads).unwrap();
        for (a, b) in seq_out.iter().zip(&bat_out) {
            assert_eq!(a.shape(), b.shape());
            assert_eq!(a.data(), b.data());
        }
        for (a, b) in seq_dx.iter().zip(&bat_dx) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn inference_mode_skips_patch_cache() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut conv = Conv2d::new((1, 4, 4), 2, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 4, 4], 1.0, &mut rng);
        conv.forward(&x, Mode::Inference);
        assert_eq!(conv.cached_rows.len(), 0);
        assert!(!conv.scratch_rows.is_empty());
        conv.forward(&x, Mode::Train);
        assert_ne!(conv.cached_rows.len(), 0);
    }
}
