use crate::{Layer, Mode};
use rand::Rng;
use remix_tensor::{
    col2im, col2im_batch, im2col_batch_into, im2col_into, Conv2dGeometry, Result, Tensor,
    TensorError,
};

/// 2-D convolution over `[C, H, W]` inputs, lowered to a matrix product via
/// im2col.
///
/// Weights are stored as `[filters, C*k*k]`, which makes both the forward
/// product and the two backward products plain rank-2 matmuls. A batch of
/// inputs lowers to one `[filters, C*k*k] x [C*k*k, B*out_h*out_w]` product
/// that reuses the same row-partitioned kernel, so batched outputs are
/// bit-identical to per-sample outputs.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Tensor, // [F, C*k*k]
    bias: Tensor,   // [F]
    grad_w: Tensor,
    grad_b: Tensor,
    geo: Conv2dGeometry,
    filters: usize,
    cached_cols: Tensor,
    scratch_cols: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution with square `kernel`, `stride` and `pad` over
    /// `in_shape = (channels, height, width)` producing `filters` channels.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is unrealizable (kernel larger than padded
    /// input or zero stride).
    pub fn new(
        in_shape: (usize, usize, usize),
        filters: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let geo = Conv2dGeometry {
            in_channels: in_shape.0,
            in_h: in_shape.1,
            in_w: in_shape.2,
            kernel,
            stride,
            pad,
        };
        assert!(geo.is_valid(), "invalid conv geometry {geo:?}");
        let fan_in = geo.patch_len();
        let std = (2.0 / fan_in as f32).sqrt();
        Self {
            weight: Tensor::randn(&[filters, fan_in], std, rng),
            bias: Tensor::zeros(&[filters]),
            grad_w: Tensor::zeros(&[filters, fan_in]),
            grad_b: Tensor::zeros(&[filters]),
            geo,
            filters,
            cached_cols: Tensor::default(),
            scratch_cols: Vec::new(),
        }
    }

    /// Output shape `(filters, out_h, out_w)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        (self.filters, self.geo.out_h(), self.geo.out_w())
    }

    /// Input gradient `col2im(Wᵀ · g)` — shared by `backward`,
    /// `backward_input` and (in its concatenated form) the batched backward.
    fn input_grad_from(&self, g: &Tensor) -> Result<Tensor> {
        let wt = self.weight.transpose()?;
        let dcols = wt.matmul(g)?;
        col2im(&dcols, &self.geo)
    }
}

impl Layer for Conv2d {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.try_forward(input, mode)
            .expect("conv input matches geometry")
    }

    fn try_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut buf = std::mem::take(&mut self.scratch_cols);
        if let Err(e) = im2col_into(input, &self.geo, &mut buf) {
            self.scratch_cols = buf;
            return Err(e);
        }
        let (oh, ow) = (self.geo.out_h(), self.geo.out_w());
        let spatial = oh * ow;
        let cols = Tensor::from_vec(buf, &[self.geo.patch_len(), spatial])?;
        let mut out = self.weight.matmul(&cols)?;
        {
            let buf = out.data_mut();
            for f in 0..self.filters {
                let b = self.bias.data()[f];
                for v in &mut buf[f * spatial..(f + 1) * spatial] {
                    *v += b;
                }
            }
        }
        if mode == Mode::Inference {
            // The input gradient only needs the weights; recycle the column
            // matrix as scratch instead of caching it.
            self.scratch_cols = cols.into_vec();
        } else {
            self.cached_cols = cols;
        }
        Tensor::from_vec(out.into_vec(), &[self.filters, oh, ow])
    }

    fn forward_batch(&mut self, inputs: &[Tensor], mode: Mode) -> Result<Vec<Tensor>> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let mut buf = std::mem::take(&mut self.scratch_cols);
        if let Err(e) = im2col_batch_into(inputs, &self.geo, &mut buf) {
            self.scratch_cols = buf;
            return Err(e);
        }
        let _ = mode;
        let batch = inputs.len();
        let (oh, ow) = (self.geo.out_h(), self.geo.out_w());
        let spatial = oh * ow;
        let total = batch * spatial;
        let cols = Tensor::from_vec(buf, &[self.geo.patch_len(), total])?;
        // One big product: sample b occupies columns b*spatial..(b+1)*spatial.
        // `matmul` accumulates each output element independently over the
        // inner dimension, so every element is bit-identical to the
        // per-sample product.
        let big = self.weight.matmul(&cols)?;
        self.scratch_cols = cols.into_vec();
        let data = big.data();
        let mut outs = Vec::with_capacity(batch);
        for bi in 0..batch {
            let mut sample = Vec::with_capacity(self.filters * spatial);
            for f in 0..self.filters {
                let base = f * total + bi * spatial;
                let b = self.bias.data()[f];
                sample.extend(data[base..base + spatial].iter().map(|&v| v + b));
            }
            outs.push(Tensor::from_vec(sample, &[self.filters, oh, ow])?);
        }
        Ok(outs)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (oh, ow) = (self.geo.out_h(), self.geo.out_w());
        let g = grad_out
            .reshape(&[self.filters, oh * ow])
            .expect("grad shape matches conv output");
        // dW += g · colsᵀ
        let cols_t = self.cached_cols.transpose().expect("cols rank 2");
        let dw = g.matmul(&cols_t).expect("dW matmul");
        self.grad_w.add_assign(&dw).expect("dW shape");
        // db += row sums of g
        {
            let gb = self.grad_b.data_mut();
            for (f, gbf) in gb.iter_mut().enumerate().take(self.filters) {
                *gbf += g.data()[f * oh * ow..(f + 1) * oh * ow].iter().sum::<f32>();
            }
        }
        // dx = col2im(Wᵀ · g)
        self.input_grad_from(&g).expect("col2im geometry")
    }

    fn backward_input(&mut self, grad_out: &Tensor) -> Tensor {
        let (oh, ow) = (self.geo.out_h(), self.geo.out_w());
        let g = grad_out
            .reshape(&[self.filters, oh * ow])
            .expect("grad shape matches conv output");
        self.input_grad_from(&g).expect("col2im geometry")
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        if grads_out.is_empty() {
            return Ok(Vec::new());
        }
        let batch = grads_out.len();
        let (oh, ow) = (self.geo.out_h(), self.geo.out_w());
        let spatial = oh * ow;
        let total = batch * spatial;
        let mut gcat = vec![0.0f32; self.filters * total];
        for (bi, g) in grads_out.iter().enumerate() {
            if g.len() != self.filters * spatial {
                return Err(TensorError::ShapeMismatch {
                    left: g.shape().to_vec(),
                    right: vec![self.filters, oh, ow],
                    op: "conv backward_input_batch",
                });
            }
            for f in 0..self.filters {
                let dst = f * total + bi * spatial;
                gcat[dst..dst + spatial].copy_from_slice(&g.data()[f * spatial..(f + 1) * spatial]);
            }
        }
        let g = Tensor::from_vec(gcat, &[self.filters, total])?;
        let wt = self.weight.transpose()?;
        let dcols = wt.matmul(&g)?;
        col2im_batch(&dcols, &self.geo, batch)
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visit(&mut self.weight, &mut self.grad_w);
        visit(&mut self.bias, &mut self.grad_b);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_matches_manual_convolution() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new((1, 3, 3), 1, 2, 1, 0, &mut rng);
        conv.weight = Tensor::ones(&[1, 4]);
        conv.bias = Tensor::from_slice(&[1.0]);
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3]).unwrap();
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.data(), &[13.0, 17.0, 25.0, 29.0]); // patch sums + bias
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new((2, 4, 4), 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train);
        let dx = conv.backward(&Tensor::ones(y.shape()));
        let eps = 1e-2;
        for &i in &[0usize, 7, 20, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = conv.forward(&xp, Mode::Train);
            let num = (yp.sum() - y.sum()) / eps;
            assert!(
                (num - dx.data()[i]).abs() < 5e-2,
                "input grad at {i}: fd={num} analytic={}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new((1, 4, 4), 2, 3, 1, 0, &mut rng);
        let x = Tensor::randn(&[1, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train);
        conv.zero_grads();
        conv.backward(&Tensor::ones(y.shape()));
        let analytic = conv.grad_w.clone();
        let eps = 1e-2;
        for &i in &[0usize, 5, 11] {
            let mut pert = conv.weight.clone();
            pert.data_mut()[i] += eps;
            let orig = std::mem::replace(&mut conv.weight, pert);
            let yp = conv.forward(&x, Mode::Train);
            conv.weight = orig;
            let num = (yp.sum() - y.sum()) / eps;
            assert!(
                (num - analytic.data()[i]).abs() < 5e-2,
                "weight grad at {i}"
            );
        }
    }

    #[test]
    fn stride_and_padding_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let conv = Conv2d::new((3, 8, 8), 6, 3, 2, 1, &mut rng);
        assert_eq!(conv.out_shape(), (6, 4, 4));
    }

    #[test]
    fn try_forward_surfaces_geometry_errors() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv2d::new((1, 3, 3), 1, 2, 1, 0, &mut rng);
        let bad = Tensor::zeros(&[1, 4, 4]);
        assert!(conv.try_forward(&bad, Mode::Eval).is_err());
        // The layer stays usable after a rejected input.
        let x = Tensor::zeros(&[1, 3, 3]);
        assert!(conv.try_forward(&x, Mode::Eval).is_ok());
    }

    #[test]
    fn batched_forward_and_backward_are_bit_identical() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut conv = Conv2d::new((2, 5, 5), 4, 3, 2, 1, &mut rng);
        let inputs: Vec<Tensor> = (0..3)
            .map(|_| Tensor::randn(&[2, 5, 5], 1.0, &mut rng))
            .collect();
        let grads: Vec<Tensor> = (0..3)
            .map(|_| Tensor::randn(&[4, 3, 3], 1.0, &mut rng))
            .collect();
        let mut seq_out = Vec::new();
        let mut seq_dx = Vec::new();
        for (x, g) in inputs.iter().zip(&grads) {
            seq_out.push(conv.forward(x, Mode::Inference));
            seq_dx.push(conv.backward_input(g));
        }
        let bat_out = conv.forward_batch(&inputs, Mode::Inference).unwrap();
        let bat_dx = conv.backward_input_batch(&grads).unwrap();
        for (a, b) in seq_out.iter().zip(&bat_out) {
            assert_eq!(a.shape(), b.shape());
            assert_eq!(a.data(), b.data());
        }
        for (a, b) in seq_dx.iter().zip(&bat_dx) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn inference_mode_skips_column_cache() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut conv = Conv2d::new((1, 4, 4), 2, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 4, 4], 1.0, &mut rng);
        conv.forward(&x, Mode::Inference);
        assert_eq!(conv.cached_cols.len(), 0);
        assert!(!conv.scratch_cols.is_empty());
        conv.forward(&x, Mode::Train);
        assert_ne!(conv.cached_cols.len(), 0);
    }
}
