use crate::{Layer, Mode};
use rand::Rng;
use remix_tensor::{col2im, im2col, Conv2dGeometry, Tensor};

/// 2-D convolution over `[C, H, W]` inputs, lowered to a matrix product via
/// im2col.
///
/// Weights are stored as `[filters, C*k*k]`, which makes both the forward
/// product and the two backward products plain rank-2 matmuls.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Tensor, // [F, C*k*k]
    bias: Tensor,   // [F]
    grad_w: Tensor,
    grad_b: Tensor,
    geo: Conv2dGeometry,
    filters: usize,
    cached_cols: Tensor,
}

impl Conv2d {
    /// Creates a convolution with square `kernel`, `stride` and `pad` over
    /// `in_shape = (channels, height, width)` producing `filters` channels.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is unrealizable (kernel larger than padded
    /// input or zero stride).
    pub fn new(
        in_shape: (usize, usize, usize),
        filters: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let geo = Conv2dGeometry {
            in_channels: in_shape.0,
            in_h: in_shape.1,
            in_w: in_shape.2,
            kernel,
            stride,
            pad,
        };
        assert!(geo.is_valid(), "invalid conv geometry {geo:?}");
        let fan_in = geo.patch_len();
        let std = (2.0 / fan_in as f32).sqrt();
        Self {
            weight: Tensor::randn(&[filters, fan_in], std, rng),
            bias: Tensor::zeros(&[filters]),
            grad_w: Tensor::zeros(&[filters, fan_in]),
            grad_b: Tensor::zeros(&[filters]),
            geo,
            filters,
            cached_cols: Tensor::default(),
        }
    }

    /// Output shape `(filters, out_h, out_w)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        (self.filters, self.geo.out_h(), self.geo.out_w())
    }
}

impl Layer for Conv2d {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let cols = im2col(input, &self.geo).expect("conv input matches geometry");
        let mut out = self.weight.matmul(&cols).expect("conv matmul");
        let (oh, ow) = (self.geo.out_h(), self.geo.out_w());
        let spatial = oh * ow;
        {
            let buf = out.data_mut();
            for f in 0..self.filters {
                let b = self.bias.data()[f];
                for v in &mut buf[f * spatial..(f + 1) * spatial] {
                    *v += b;
                }
            }
        }
        self.cached_cols = cols;
        out.reshape(&[self.filters, oh, ow])
            .expect("reshape conv out")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (oh, ow) = (self.geo.out_h(), self.geo.out_w());
        let g = grad_out
            .reshape(&[self.filters, oh * ow])
            .expect("grad shape matches conv output");
        // dW += g · colsᵀ
        let cols_t = self.cached_cols.transpose().expect("cols rank 2");
        let dw = g.matmul(&cols_t).expect("dW matmul");
        self.grad_w.add_assign(&dw).expect("dW shape");
        // db += row sums of g
        {
            let gb = self.grad_b.data_mut();
            for (f, gbf) in gb.iter_mut().enumerate().take(self.filters) {
                *gbf += g.data()[f * oh * ow..(f + 1) * oh * ow].iter().sum::<f32>();
            }
        }
        // dx = col2im(Wᵀ · g)
        let wt = self.weight.transpose().expect("weight rank 2");
        let dcols = wt.matmul(&g).expect("dcols matmul");
        col2im(&dcols, &self.geo).expect("col2im geometry")
    }

    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visit(&mut self.weight, &mut self.grad_w);
        visit(&mut self.bias, &mut self.grad_b);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_matches_manual_convolution() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new((1, 3, 3), 1, 2, 1, 0, &mut rng);
        conv.weight = Tensor::ones(&[1, 4]);
        conv.bias = Tensor::from_slice(&[1.0]);
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3]).unwrap();
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.data(), &[13.0, 17.0, 25.0, 29.0]); // patch sums + bias
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new((2, 4, 4), 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train);
        let dx = conv.backward(&Tensor::ones(y.shape()));
        let eps = 1e-2;
        for &i in &[0usize, 7, 20, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = conv.forward(&xp, Mode::Train);
            let num = (yp.sum() - y.sum()) / eps;
            assert!(
                (num - dx.data()[i]).abs() < 5e-2,
                "input grad at {i}: fd={num} analytic={}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new((1, 4, 4), 2, 3, 1, 0, &mut rng);
        let x = Tensor::randn(&[1, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train);
        conv.zero_grads();
        conv.backward(&Tensor::ones(y.shape()));
        let analytic = conv.grad_w.clone();
        let eps = 1e-2;
        for &i in &[0usize, 5, 11] {
            let mut pert = conv.weight.clone();
            pert.data_mut()[i] += eps;
            let orig = std::mem::replace(&mut conv.weight, pert);
            let yp = conv.forward(&x, Mode::Train);
            conv.weight = orig;
            let num = (yp.sum() - y.sum()) / eps;
            assert!(
                (num - analytic.data()[i]).abs() < 5e-2,
                "weight grad at {i}"
            );
        }
    }

    #[test]
    fn stride_and_padding_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let conv = Conv2d::new((3, 8, 8), 6, 3, 2, 1, &mut rng);
        assert_eq!(conv.out_shape(), (6, 4, 4));
    }
}
