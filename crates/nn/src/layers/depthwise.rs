use crate::{Layer, Mode};
use rand::Rng;
use remix_tensor::{Result, Tensor};

/// Depthwise 2-D convolution: one `k×k` filter per input channel.
///
/// This is the distinguishing layer of MobileNet and of the MBConv blocks in
/// EfficientNetV2. Channel counts in the zoo are small, so a direct loop is
/// fast enough without im2col lowering.
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    weight: Tensor, // [C, k*k]
    bias: Tensor,   // [C]
    grad_w: Tensor,
    grad_b: Tensor,
    channels: usize,
    in_h: usize,
    in_w: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    cached_input: Tensor,
    batch_inputs: Vec<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution over `in_shape = (channels, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn new(
        in_shape: (usize, usize, usize),
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let (c, h, w) = in_shape;
        assert!(h + 2 * pad >= kernel && w + 2 * pad >= kernel && stride > 0);
        let std = (2.0 / (kernel * kernel) as f32).sqrt();
        Self {
            weight: Tensor::randn(&[c, kernel * kernel], std, rng),
            bias: Tensor::zeros(&[c]),
            grad_w: Tensor::zeros(&[c, kernel * kernel]),
            grad_b: Tensor::zeros(&[c]),
            channels: c,
            in_h: h,
            in_w: w,
            kernel,
            stride,
            pad,
            cached_input: Tensor::default(),
            batch_inputs: Vec::new(),
        }
    }

    fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kernel) / self.stride + 1
    }

    fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output shape `(channels, out_h, out_w)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        (self.channels, self.out_h(), self.out_w())
    }

    /// Input gradient only: the same loop as [`Layer::backward`] with the
    /// parameter-gradient updates removed, so `dx` accumulates in the exact
    /// same order.
    fn input_grad(&self, grad_out: &Tensor) -> Tensor {
        let (oh, ow, k) = (self.out_h(), self.out_w(), self.kernel);
        debug_assert_eq!(grad_out.shape(), [self.channels, oh, ow]);
        let mut dx = Tensor::zeros(&[self.channels, self.in_h, self.in_w]);
        let g = grad_out.data();
        let dxb = dx.data_mut();
        for c in 0..self.channels {
            let w = &self.weight.data()[c * k * k..(c + 1) * k * k];
            for oy in 0..oh {
                for ox in 0..ow {
                    let gv = g[(c * oh + oy) * ow + ox];
                    if gv == 0.0 {
                        continue;
                    }
                    for ky in 0..k {
                        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                        if iy < 0 || iy >= self.in_h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if ix < 0 || ix >= self.in_w as isize {
                                continue;
                            }
                            let xi = (c * self.in_h + iy as usize) * self.in_w + ix as usize;
                            dxb[xi] += gv * w[ky * k + kx];
                        }
                    }
                }
            }
        }
        dx
    }

    /// Full backward for one sample against an explicit input: accumulates
    /// dW/db and returns dx. Shared by [`Layer::backward`] (cached input) and
    /// [`Layer::backward_batch`] (per-sample batch inputs, in order), so both
    /// run identical accumulation chains.
    fn backward_sample(&mut self, grad_out: &Tensor, input: &Tensor) -> Tensor {
        let (oh, ow, k) = (self.out_h(), self.out_w(), self.kernel);
        debug_assert_eq!(grad_out.shape(), [self.channels, oh, ow]);
        let mut dx = Tensor::zeros(&[self.channels, self.in_h, self.in_w]);
        let x = input.data();
        let g = grad_out.data();
        let dxb = dx.data_mut();
        for c in 0..self.channels {
            let w = &self.weight.data()[c * k * k..(c + 1) * k * k];
            let gw_base = c * k * k;
            let mut db = 0.0;
            for oy in 0..oh {
                for ox in 0..ow {
                    let gv = g[(c * oh + oy) * ow + ox];
                    if gv == 0.0 {
                        continue;
                    }
                    db += gv;
                    for ky in 0..k {
                        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                        if iy < 0 || iy >= self.in_h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if ix < 0 || ix >= self.in_w as isize {
                                continue;
                            }
                            let xi = (c * self.in_h + iy as usize) * self.in_w + ix as usize;
                            self.grad_w.data_mut()[gw_base + ky * k + kx] += gv * x[xi];
                            dxb[xi] += gv * w[ky * k + kx];
                        }
                    }
                }
            }
            self.grad_b.data_mut()[c] += db;
        }
        dx
    }

    /// Parameter gradients only for one sample: the same loop as
    /// [`DepthwiseConv2d::backward_sample`] with the `dx` writes removed, so
    /// `dW`/`db` accumulate in the exact same order.
    fn param_grads_sample(&mut self, grad_out: &Tensor, input: &Tensor) {
        let (oh, ow, k) = (self.out_h(), self.out_w(), self.kernel);
        debug_assert_eq!(grad_out.shape(), [self.channels, oh, ow]);
        let x = input.data();
        let g = grad_out.data();
        for c in 0..self.channels {
            let gw_base = c * k * k;
            let mut db = 0.0;
            for oy in 0..oh {
                for ox in 0..ow {
                    let gv = g[(c * oh + oy) * ow + ox];
                    if gv == 0.0 {
                        continue;
                    }
                    db += gv;
                    for ky in 0..k {
                        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                        if iy < 0 || iy >= self.in_h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if ix < 0 || ix >= self.in_w as isize {
                                continue;
                            }
                            let xi = (c * self.in_h + iy as usize) * self.in_w + ix as usize;
                            self.grad_w.data_mut()[gw_base + ky * k + kx] += gv * x[xi];
                        }
                    }
                }
            }
            self.grad_b.data_mut()[c] += db;
        }
    }
}

impl Layer for DepthwiseConv2d {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        debug_assert_eq!(input.shape(), [self.channels, self.in_h, self.in_w]);
        let (oh, ow, k) = (self.out_h(), self.out_w(), self.kernel);
        let mut out = Tensor::zeros(&[self.channels, oh, ow]);
        let x = input.data();
        let buf = out.data_mut();
        for c in 0..self.channels {
            let w = &self.weight.data()[c * k * k..(c + 1) * k * k];
            let b = self.bias.data()[c];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    for ky in 0..k {
                        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                        if iy < 0 || iy >= self.in_h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if ix < 0 || ix >= self.in_w as isize {
                                continue;
                            }
                            acc += w[ky * k + kx]
                                * x[(c * self.in_h + iy as usize) * self.in_w + ix as usize];
                        }
                    }
                    buf[(c * oh + oy) * ow + ox] = acc;
                }
            }
        }
        if mode != Mode::Inference {
            // Only the dW accumulation reads the cached input.
            self.cached_input = input.clone();
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = std::mem::take(&mut self.cached_input);
        let dx = self.backward_sample(grad_out, &input);
        self.cached_input = input;
        dx
    }

    fn backward_params_only(&mut self, grad_out: &Tensor) {
        let input = std::mem::take(&mut self.cached_input);
        self.param_grads_sample(grad_out, &input);
        self.cached_input = input;
    }

    fn backward_input(&mut self, grad_out: &Tensor) -> Tensor {
        self.input_grad(grad_out)
    }

    fn forward_batch(&mut self, inputs: &[Tensor], mode: Mode) -> Result<Vec<Tensor>> {
        let outs = inputs
            .iter()
            .map(|x| self.try_forward(x, mode))
            .collect::<Result<Vec<_>>>()?;
        if mode != Mode::Inference {
            self.batch_inputs = inputs.to_vec();
        } else {
            self.batch_inputs.clear();
        }
        Ok(outs)
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        Ok(grads_out.iter().map(|g| self.input_grad(g)).collect())
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        let inputs = std::mem::take(&mut self.batch_inputs);
        assert_eq!(
            grads_out.len(),
            inputs.len(),
            "backward_batch batch size must match the preceding forward_batch"
        );
        Ok(grads_out
            .iter()
            .zip(&inputs)
            .map(|(g, x)| self.backward_sample(g, x))
            .collect())
    }

    fn backward_batch_params_only(&mut self, grads_out: &[Tensor]) -> Result<()> {
        let inputs = std::mem::take(&mut self.batch_inputs);
        assert_eq!(
            grads_out.len(),
            inputs.len(),
            "backward_batch batch size must match the preceding forward_batch"
        );
        for (g, x) in grads_out.iter().zip(&inputs) {
            self.param_grads_sample(g, x);
        }
        Ok(())
    }

    fn supports_batched_train(&self) -> bool {
        true
    }

    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visit(&mut self.weight, &mut self.grad_w);
        visit(&mut self.bias, &mut self.grad_b);
    }

    fn prepare_inference(&mut self) {
        // Deliberate no-op: depthwise convolution never lowers to a GEMM —
        // its per-channel kernels run as direct loops over the input — so
        // there is no packed weight operand to freeze.
    }

    fn name(&self) -> &'static str {
        "DepthwiseConv2d"
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn channels_do_not_mix() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut dw = DepthwiseConv2d::new((2, 3, 3), 3, 1, 1, &mut rng);
        // zero out channel 1's filter: its output must be all bias (= 0)
        for v in &mut dw.weight.data_mut()[9..18] {
            *v = 0.0;
        }
        let x = Tensor::ones(&[2, 3, 3]);
        let y = dw.forward(&x, Mode::Eval);
        let ch1 = y.index_axis0(1).unwrap();
        assert!(ch1.data().iter().all(|&v| v == 0.0));
        let ch0 = y.index_axis0(0).unwrap();
        assert!(ch0.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut dw = DepthwiseConv2d::new((2, 4, 4), 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 4, 4], 1.0, &mut rng);
        let y = dw.forward(&x, Mode::Train);
        dw.zero_grads();
        let dx = dw.backward(&Tensor::ones(y.shape()));
        let eps = 1e-2;
        for &i in &[0usize, 9, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = dw.forward(&xp, Mode::Train);
            let num = (yp.sum() - y.sum()) / eps;
            assert!((num - dx.data()[i]).abs() < 5e-2, "input grad at {i}");
        }
    }

    #[test]
    fn stride_two_halves_resolution() {
        let mut rng = StdRng::seed_from_u64(3);
        let dw = DepthwiseConv2d::new((4, 8, 8), 3, 2, 1, &mut rng);
        assert_eq!(dw.out_shape(), (4, 4, 4));
    }
}
