use crate::{Layer, Mode};
use remix_tensor::{Result, Tensor, TensorError};

/// Per-channel instance normalization with learnable affine parameters.
///
/// The zoo's deep architectures (ResNet, MobileNet, EfficientNetV2) rely on
/// batch normalization in their reference form. This trainer feeds samples
/// one at a time, where batch statistics degenerate, so the normalization
/// role is filled by *instance* normalization — per-sample per-channel
/// standardization with an exact backward pass through the statistics. It is
/// deterministic, identical between train and eval modes, and keeps the deep
/// zoo models trainable, which is what the reproduction needs from BN.
#[derive(Debug, Clone)]
pub struct InstanceNorm2d {
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    eps: f32,
    channels: usize,
    spatial: usize,
    cached_xhat: Tensor,
    cached_sigma: Vec<f32>,
    batch_xhat: Vec<Tensor>,
    batch_sigma: Vec<Vec<f32>>,
}

impl InstanceNorm2d {
    /// Creates an instance-norm layer over `in_shape = (channels, h, w)`.
    pub fn new(in_shape: (usize, usize, usize)) -> Self {
        let (c, h, w) = in_shape;
        Self {
            gamma: Tensor::ones(&[c]),
            beta: Tensor::zeros(&[c]),
            grad_gamma: Tensor::zeros(&[c]),
            grad_beta: Tensor::zeros(&[c]),
            eps: 1e-5,
            channels: c,
            spatial: h * w,
            cached_xhat: Tensor::default(),
            cached_sigma: vec![1.0; c],
            batch_xhat: Vec::new(),
            batch_sigma: Vec::new(),
        }
    }

    /// `dx = γ/(Nσ) · (N·dy − Σdy − x̂·Σ(dy·x̂))` for one sample, without the
    /// parameter-gradient accumulation of [`Layer::backward`].
    fn input_grad_from(&self, grad_out: &Tensor, xhat_t: &Tensor, sigma: &[f32]) -> Tensor {
        let n = self.spatial as f32;
        let mut dx = Tensor::zeros(grad_out.shape());
        let buf = dx.data_mut();
        for c in 0..self.channels {
            let g = self.gamma.data()[c];
            let s = sigma[c];
            let xhat = &xhat_t.data()[c * self.spatial..(c + 1) * self.spatial];
            let go = &grad_out.data()[c * self.spatial..(c + 1) * self.spatial];
            let sum_dy: f32 = go.iter().sum();
            let sum_dy_xhat: f32 = go.iter().zip(xhat).map(|(&a, &b)| a * b).sum();
            for i in 0..self.spatial {
                buf[c * self.spatial + i] =
                    g / (n * s) * (n * go[i] - sum_dy - xhat[i] * sum_dy_xhat);
            }
        }
        dx
    }
}

impl Layer for InstanceNorm2d {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        debug_assert_eq!(input.len(), self.channels * self.spatial);
        let n = self.spatial as f32;
        let mut out = Tensor::zeros(input.shape());
        let mut xhat = Tensor::zeros(input.shape());
        {
            let ob = out.data_mut();
            let xb = xhat.data_mut();
            for c in 0..self.channels {
                let slice = &input.data()[c * self.spatial..(c + 1) * self.spatial];
                let mean = slice.iter().sum::<f32>() / n;
                let var = slice.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
                let sigma = (var + self.eps).sqrt();
                self.cached_sigma[c] = sigma;
                let (g, b) = (self.gamma.data()[c], self.beta.data()[c]);
                for i in 0..self.spatial {
                    let h = (slice[i] - mean) / sigma;
                    xb[c * self.spatial + i] = h;
                    ob[c * self.spatial + i] = g * h + b;
                }
            }
        }
        self.cached_xhat = xhat;
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let n = self.spatial as f32;
        let mut dx = Tensor::zeros(grad_out.shape());
        let buf = dx.data_mut();
        for c in 0..self.channels {
            let g = self.gamma.data()[c];
            let sigma = self.cached_sigma[c];
            let xhat = &self.cached_xhat.data()[c * self.spatial..(c + 1) * self.spatial];
            let go = &grad_out.data()[c * self.spatial..(c + 1) * self.spatial];
            // exact instance-norm backward:
            // dx = γ/(Nσ) · (N·dy − Σdy − x̂·Σ(dy·x̂))
            let sum_dy: f32 = go.iter().sum();
            let sum_dy_xhat: f32 = go.iter().zip(xhat).map(|(&a, &b)| a * b).sum();
            for i in 0..self.spatial {
                buf[c * self.spatial + i] =
                    g / (n * sigma) * (n * go[i] - sum_dy - xhat[i] * sum_dy_xhat);
            }
            self.grad_gamma.data_mut()[c] += sum_dy_xhat;
            self.grad_beta.data_mut()[c] += sum_dy;
        }
        dx
    }

    fn forward_batch(&mut self, inputs: &[Tensor], mode: Mode) -> Result<Vec<Tensor>> {
        // Instance norm is per-sample by definition; run the single-sample
        // forward and collect its caches per sample.
        let mut xhats = Vec::with_capacity(inputs.len());
        let mut sigmas = Vec::with_capacity(inputs.len());
        let outs = inputs
            .iter()
            .map(|x| {
                let y = self.forward(x, mode);
                xhats.push(std::mem::take(&mut self.cached_xhat));
                sigmas.push(self.cached_sigma.clone());
                y
            })
            .collect();
        self.batch_xhat = xhats;
        self.batch_sigma = sigmas;
        Ok(outs)
    }

    fn backward_input(&mut self, grad_out: &Tensor) -> Tensor {
        self.input_grad_from(grad_out, &self.cached_xhat, &self.cached_sigma)
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        if grads_out.len() != self.batch_xhat.len() {
            return Err(TensorError::ShapeMismatch {
                left: vec![grads_out.len()],
                right: vec![self.batch_xhat.len()],
                op: "instancenorm backward_input_batch",
            });
        }
        Ok(grads_out
            .iter()
            .zip(self.batch_xhat.iter().zip(&self.batch_sigma))
            .map(|(g, (xhat, sigma))| self.input_grad_from(g, xhat, sigma))
            .collect())
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        if grads_out.len() != self.batch_xhat.len() {
            return Err(TensorError::ShapeMismatch {
                left: vec![grads_out.len()],
                right: vec![self.batch_xhat.len()],
                op: "instancenorm backward_batch",
            });
        }
        let xhats = std::mem::take(&mut self.batch_xhat);
        let sigmas = std::mem::take(&mut self.batch_sigma);
        let mut dxs = Vec::with_capacity(grads_out.len());
        // dγ/dβ accumulate per sample in batch order, recomputing the same
        // per-channel sums backward() folds — identical chains, so batched
        // training matches per-sample training bitwise.
        for (g, (xhat_t, sigma)) in grads_out.iter().zip(xhats.iter().zip(&sigmas)) {
            dxs.push(self.input_grad_from(g, xhat_t, sigma));
            for c in 0..self.channels {
                let xhat = &xhat_t.data()[c * self.spatial..(c + 1) * self.spatial];
                let go = &g.data()[c * self.spatial..(c + 1) * self.spatial];
                let sum_dy: f32 = go.iter().sum();
                let sum_dy_xhat: f32 = go.iter().zip(xhat).map(|(&a, &b)| a * b).sum();
                self.grad_gamma.data_mut()[c] += sum_dy_xhat;
                self.grad_beta.data_mut()[c] += sum_dy;
            }
        }
        Ok(dxs)
    }

    fn supports_batched_train(&self) -> bool {
        true
    }

    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visit(&mut self.gamma, &mut self.grad_gamma);
        visit(&mut self.beta, &mut self.grad_beta);
    }

    fn name(&self) -> &'static str {
        "InstanceNorm2d"
    }

    fn param_count(&self) -> usize {
        self.gamma.len() + self.beta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use remix_tensor::Tensor;

    #[test]
    fn output_is_standardized_per_channel() {
        let mut norm = InstanceNorm2d::new((2, 4, 4));
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[2, 4, 4], 3.0, &mut rng).add_scalar(5.0);
        let y = norm.forward(&x, Mode::Train);
        for c in 0..2 {
            let ch = y.index_axis0(c).unwrap();
            assert!(ch.mean().abs() < 1e-4, "channel {c} mean {}", ch.mean());
            assert!(
                (ch.std() - 1.0).abs() < 1e-2,
                "channel {c} std {}",
                ch.std()
            );
        }
    }

    #[test]
    fn train_and_eval_agree() {
        let mut norm = InstanceNorm2d::new((1, 3, 3));
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(&[1, 3, 3], 1.0, &mut rng);
        let a = norm.forward(&x, Mode::Train);
        let b = norm.forward(&x, Mode::Eval);
        assert_eq!(a, b);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut norm = InstanceNorm2d::new((2, 3, 3));
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[2, 3, 3], 1.0, &mut rng);
        // non-trivial downstream loss: weighted sum
        let w = Tensor::randn(&[2, 3, 3], 1.0, &mut rng);
        let loss = |norm: &mut InstanceNorm2d, x: &Tensor| -> f32 {
            norm.forward(x, Mode::Train).mul(&w).unwrap().sum()
        };
        let base = loss(&mut norm, &x);
        let dx = norm.backward(&w);
        let eps = 1e-2;
        for &i in &[0usize, 4, 9, 13, 17] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let num = (loss(&mut norm, &xp) - base) / eps;
            assert!(
                (num - dx.data()[i]).abs() < 5e-2,
                "grad at {i}: fd={num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn constant_channel_does_not_blow_up() {
        let mut norm = InstanceNorm2d::new((1, 2, 2));
        let y = norm.forward(&Tensor::full(&[1, 2, 2], 7.0), Mode::Train);
        assert!(!y.has_non_finite());
        let dx = norm.backward(&Tensor::ones(&[1, 2, 2]));
        assert!(!dx.has_non_finite());
    }

    #[test]
    fn gamma_beta_gradients_accumulate() {
        let mut norm = InstanceNorm2d::new((1, 2, 2));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        norm.forward(&x, Mode::Train);
        norm.backward(&Tensor::ones(&[1, 2, 2]));
        assert_eq!(norm.grad_beta.data()[0], 4.0);
        // x̂ sums to ~0, so dγ ≈ 0 for a uniform upstream gradient
        assert!(norm.grad_gamma.data()[0].abs() < 1e-4);
    }
}
