use crate::layers::Conv2d;
use crate::{Layer, Mode, Sequential};
use rand::Rng;
use remix_tensor::Tensor;

/// Residual block: `y = body(x) + shortcut(x)`.
///
/// The shortcut is the identity when the body preserves shape, or a strided
/// 1×1 projection convolution when the body changes channel count or spatial
/// resolution — exactly the two shortcut flavours of ResNet-18/50.
#[derive(Clone)]
pub struct Residual {
    body: Sequential,
    projection: Option<Conv2d>,
    cached_input: Tensor,
}

impl Residual {
    /// Creates an identity-shortcut block (body must preserve shape).
    pub fn identity(body: Sequential) -> Self {
        Self {
            body,
            projection: None,
            cached_input: Tensor::default(),
        }
    }

    /// Creates a block with a 1×1 projection shortcut mapping
    /// `in_shape -> (out_channels, ...)` at `stride`.
    pub fn projected(
        body: Sequential,
        in_shape: (usize, usize, usize),
        out_channels: usize,
        stride: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            body,
            projection: Some(Conv2d::new(in_shape, out_channels, 1, stride, 0, rng)),
            cached_input: Tensor::default(),
        }
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Residual(body={:?}, projected={})",
            self.body,
            self.projection.is_some()
        )
    }
}

impl Layer for Residual {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.cached_input = input.clone();
        let mut out = self.body.forward(input, mode);
        let shortcut = match &mut self.projection {
            Some(proj) => proj.forward(input, mode),
            None => input.clone(),
        };
        out.add_assign(&shortcut)
            .expect("residual body and shortcut shapes must agree");
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut dx = self.body.backward(grad_out);
        let d_short = match &mut self.projection {
            Some(proj) => proj.backward(grad_out),
            None => grad_out.clone(),
        };
        dx.add_assign(&d_short).expect("shortcut grad shape");
        dx
    }

    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.body.visit_params(visit);
        if let Some(proj) = &mut self.projection {
            proj.visit_params(visit);
        }
    }

    fn name(&self) -> &'static str {
        "Residual"
    }

    fn param_count(&self) -> usize {
        self.body.param_count() + self.projection.as_ref().map_or(0, |p| p.param_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Relu;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn identity_block_with_empty_body_doubles_nothing() {
        // body = ReLU only: y = relu(x) + x
        let mut body = Sequential::new();
        body.push(Relu::new());
        let mut block = Residual::identity(body);
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[2, 1, 1]).unwrap();
        let y = block.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[-1.0, 4.0]);
    }

    #[test]
    fn gradient_flows_through_both_paths() {
        let mut body = Sequential::new();
        body.push(Relu::new());
        let mut block = Residual::identity(body);
        let x = Tensor::from_vec(vec![1.0, -1.0], &[2, 1, 1]).unwrap();
        block.forward(&x, Mode::Train);
        let dx = block.backward(&Tensor::ones(&[2, 1, 1]));
        // positive input: relu path + identity = 2; negative: identity only = 1
        assert_eq!(dx.data(), &[2.0, 1.0]);
    }

    #[test]
    fn projected_block_changes_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut body = Sequential::new();
        body.push(Conv2d::new((2, 4, 4), 4, 3, 2, 1, &mut rng));
        let mut block = Residual::projected(body, (2, 4, 4), 4, 2, &mut rng);
        let x = Tensor::randn(&[2, 4, 4], 1.0, &mut rng);
        let y = block.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[4, 2, 2]);
        let dx = block.backward(&Tensor::ones(&[4, 2, 2]));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn projected_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut body = Sequential::new();
        body.push(Conv2d::new((1, 4, 4), 2, 3, 1, 1, &mut rng));
        let mut block = Residual::projected(body, (1, 4, 4), 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 4, 4], 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train);
        let dx = block.backward(&Tensor::ones(y.shape()));
        let eps = 1e-2;
        for &i in &[0usize, 6, 15] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = block.forward(&xp, Mode::Train);
            let num = (yp.sum() - y.sum()) / eps;
            assert!((num - dx.data()[i]).abs() < 5e-2, "grad at {i}");
        }
    }
}
