use crate::layers::Conv2d;
use crate::{Layer, Mode, Sequential};
use rand::Rng;
use remix_tensor::{Result, Tensor};

/// Residual block: `y = body(x) + shortcut(x)`.
///
/// The shortcut is the identity when the body preserves shape, or a strided
/// 1×1 projection convolution when the body changes channel count or spatial
/// resolution — exactly the two shortcut flavours of ResNet-18/50.
#[derive(Clone)]
pub struct Residual {
    body: Sequential,
    projection: Option<Conv2d>,
}

impl Residual {
    /// Creates an identity-shortcut block (body must preserve shape).
    pub fn identity(body: Sequential) -> Self {
        Self {
            body,
            projection: None,
        }
    }

    /// Creates a block with a 1×1 projection shortcut mapping
    /// `in_shape -> (out_channels, ...)` at `stride`.
    pub fn projected(
        body: Sequential,
        in_shape: (usize, usize, usize),
        out_channels: usize,
        stride: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            body,
            projection: Some(Conv2d::new(in_shape, out_channels, 1, stride, 0, rng)),
        }
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Residual(body={:?}, projected={})",
            self.body,
            self.projection.is_some()
        )
    }
}

impl Layer for Residual {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut out = self.body.forward(input, mode);
        let shortcut = match &mut self.projection {
            Some(proj) => proj.forward(input, mode),
            None => input.clone(),
        };
        out.add_assign(&shortcut)
            .expect("residual body and shortcut shapes must agree");
        out
    }

    fn try_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut out = self.body.try_forward(input, mode)?;
        let shortcut = match &mut self.projection {
            Some(proj) => proj.try_forward(input, mode)?,
            None => input.clone(),
        };
        out.add_assign(&shortcut)?;
        Ok(out)
    }

    fn forward_batch(&mut self, inputs: &[Tensor], mode: Mode) -> Result<Vec<Tensor>> {
        let mut outs = self.body.forward_batch(inputs, mode)?;
        match &mut self.projection {
            Some(proj) => {
                let shorts = proj.forward_batch(inputs, mode)?;
                for (o, s) in outs.iter_mut().zip(&shorts) {
                    o.add_assign(s)?;
                }
            }
            None => {
                for (o, s) in outs.iter_mut().zip(inputs) {
                    o.add_assign(s)?;
                }
            }
        }
        Ok(outs)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut dx = self.body.backward(grad_out);
        let d_short = match &mut self.projection {
            Some(proj) => proj.backward(grad_out),
            None => grad_out.clone(),
        };
        dx.add_assign(&d_short).expect("shortcut grad shape");
        dx
    }

    fn backward_input(&mut self, grad_out: &Tensor) -> Tensor {
        let mut dx = self.body.backward_input(grad_out);
        let d_short = match &mut self.projection {
            Some(proj) => proj.backward_input(grad_out),
            None => grad_out.clone(),
        };
        dx.add_assign(&d_short).expect("shortcut grad shape");
        dx
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        let mut dxs = self.body.backward_input_batch(grads_out)?;
        match &mut self.projection {
            Some(proj) => {
                let shorts = proj.backward_input_batch(grads_out)?;
                for (d, s) in dxs.iter_mut().zip(&shorts) {
                    d.add_assign(s)?;
                }
            }
            None => {
                for (d, g) in dxs.iter_mut().zip(grads_out) {
                    d.add_assign(g)?;
                }
            }
        }
        Ok(dxs)
    }

    fn supports_batched_backward(&self) -> bool {
        self.body.supports_batched_backward()
            && self
                .projection
                .as_ref()
                .is_none_or(Layer::supports_batched_backward)
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // Body and projection own disjoint parameter sets, so running the
        // body's batched backward before the projection's preserves each
        // parameter's per-sample accumulation chain.
        let mut dxs = self.body.backward_batch(grads_out)?;
        match &mut self.projection {
            Some(proj) => {
                let shorts = proj.backward_batch(grads_out)?;
                for (d, s) in dxs.iter_mut().zip(&shorts) {
                    d.add_assign(s)?;
                }
            }
            None => {
                for (d, g) in dxs.iter_mut().zip(grads_out) {
                    d.add_assign(g)?;
                }
            }
        }
        Ok(dxs)
    }

    fn supports_batched_train(&self) -> bool {
        self.body.supports_batched_train()
            && self
                .projection
                .as_ref()
                .is_none_or(Layer::supports_batched_train)
    }

    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.body.visit_params(visit);
        if let Some(proj) = &mut self.projection {
            proj.visit_params(visit);
        }
    }

    fn prepare_inference(&mut self) {
        self.body.prepare_inference();
        if let Some(proj) = &mut self.projection {
            proj.prepare_inference();
        }
    }

    fn name(&self) -> &'static str {
        "Residual"
    }

    fn param_count(&self) -> usize {
        self.body.param_count() + self.projection.as_ref().map_or(0, |p| p.param_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Relu;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn identity_block_with_empty_body_doubles_nothing() {
        // body = ReLU only: y = relu(x) + x
        let mut body = Sequential::new();
        body.push(Relu::new());
        let mut block = Residual::identity(body);
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[2, 1, 1]).unwrap();
        let y = block.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[-1.0, 4.0]);
    }

    #[test]
    fn gradient_flows_through_both_paths() {
        let mut body = Sequential::new();
        body.push(Relu::new());
        let mut block = Residual::identity(body);
        let x = Tensor::from_vec(vec![1.0, -1.0], &[2, 1, 1]).unwrap();
        block.forward(&x, Mode::Train);
        let dx = block.backward(&Tensor::ones(&[2, 1, 1]));
        // positive input: relu path + identity = 2; negative: identity only = 1
        assert_eq!(dx.data(), &[2.0, 1.0]);
    }

    #[test]
    fn projected_block_changes_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut body = Sequential::new();
        body.push(Conv2d::new((2, 4, 4), 4, 3, 2, 1, &mut rng));
        let mut block = Residual::projected(body, (2, 4, 4), 4, 2, &mut rng);
        let x = Tensor::randn(&[2, 4, 4], 1.0, &mut rng);
        let y = block.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[4, 2, 2]);
        let dx = block.backward(&Tensor::ones(&[4, 2, 2]));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn projected_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut body = Sequential::new();
        body.push(Conv2d::new((1, 4, 4), 2, 3, 1, 1, &mut rng));
        let mut block = Residual::projected(body, (1, 4, 4), 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 4, 4], 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train);
        let dx = block.backward(&Tensor::ones(y.shape()));
        let eps = 1e-2;
        for &i in &[0usize, 6, 15] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = block.forward(&xp, Mode::Train);
            let num = (yp.sum() - y.sum()) / eps;
            assert!((num - dx.data()[i]).abs() < 5e-2, "grad at {i}");
        }
    }

    #[test]
    fn batched_projected_block_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut body = Sequential::new();
        body.push(Conv2d::new((2, 4, 4), 4, 3, 2, 1, &mut rng));
        let mut block = Residual::projected(body, (2, 4, 4), 4, 2, &mut rng);
        assert!(block.supports_batched_backward());
        let xs: Vec<Tensor> = (0..3)
            .map(|_| Tensor::randn(&[2, 4, 4], 1.0, &mut rng))
            .collect();
        let gs: Vec<Tensor> = (0..3)
            .map(|_| Tensor::randn(&[4, 2, 2], 1.0, &mut rng))
            .collect();
        let mut seq_y = Vec::new();
        let mut seq_dx = Vec::new();
        for (x, g) in xs.iter().zip(&gs) {
            seq_y.push(block.forward(x, Mode::Inference));
            seq_dx.push(block.backward_input(g));
        }
        let bat_y = block.forward_batch(&xs, Mode::Inference).unwrap();
        let bat_dx = block.backward_input_batch(&gs).unwrap();
        for (a, b) in seq_y.iter().zip(&bat_y) {
            assert_eq!(a.data(), b.data());
        }
        for (a, b) in seq_dx.iter().zip(&bat_dx) {
            assert_eq!(a.data(), b.data());
        }
    }
}
