use crate::{Layer, Mode};
use remix_tensor::{Result, Tensor, TensorError};

/// Max pooling with square window and matching stride over `[C, H, W]`.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    in_shape: (usize, usize, usize),
    argmax: Vec<usize>,
    batch_argmax: Vec<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pool of `window`×`window` (stride = window).
    ///
    /// # Panics
    ///
    /// Panics if the window does not divide the spatial dimensions.
    pub fn new(in_shape: (usize, usize, usize), window: usize) -> Self {
        assert!(
            window > 0 && in_shape.1.is_multiple_of(window) && in_shape.2.is_multiple_of(window),
            "pool window {window} must divide spatial dims {in_shape:?}"
        );
        Self {
            window,
            in_shape,
            argmax: Vec::new(),
            batch_argmax: Vec::new(),
        }
    }

    /// Output shape `(C, H/window, W/window)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        let (c, h, w) = self.in_shape;
        (c, h / self.window, w / self.window)
    }

    fn pool_one(&self, input: &Tensor, argmax: &mut Vec<usize>) -> Tensor {
        let (c, h, w) = self.in_shape;
        debug_assert_eq!(input.shape(), [c, h, w]);
        let (oc, oh, ow) = self.out_shape();
        let mut out = Tensor::zeros(&[oc, oh, ow]);
        argmax.clear();
        argmax.reserve(oc * oh * ow);
        let x = input.data();
        let buf = out.data_mut();
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best_i = (ci * h + oy * self.window) * w + ox * self.window;
                    let mut best = x[best_i];
                    for ky in 0..self.window {
                        for kx in 0..self.window {
                            let i = (ci * h + oy * self.window + ky) * w + ox * self.window + kx;
                            if x[i] > best {
                                best = x[i];
                                best_i = i;
                            }
                        }
                    }
                    buf[(ci * oh + oy) * ow + ox] = best;
                    argmax.push(best_i);
                }
            }
        }
        out
    }

    fn route_grad(&self, grad_out: &Tensor, argmax: &[usize]) -> Tensor {
        let (c, h, w) = self.in_shape;
        let mut dx = Tensor::zeros(&[c, h, w]);
        let buf = dx.data_mut();
        for (&src, &g) in argmax.iter().zip(grad_out.data()) {
            buf[src] += g;
        }
        dx
    }
}

impl Layer for MaxPool2d {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let mut argmax = std::mem::take(&mut self.argmax);
        let out = self.pool_one(input, &mut argmax);
        self.argmax = argmax;
        out
    }

    fn forward_batch(&mut self, inputs: &[Tensor], _mode: Mode) -> Result<Vec<Tensor>> {
        let mut argmaxes = Vec::with_capacity(inputs.len());
        let outs = inputs
            .iter()
            .map(|x| {
                let mut a = Vec::new();
                let y = self.pool_one(x, &mut a);
                argmaxes.push(a);
                y
            })
            .collect();
        self.batch_argmax = argmaxes;
        Ok(outs)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = std::mem::take(&mut self.argmax);
        let dx = self.route_grad(grad_out, &argmax);
        self.argmax = argmax;
        dx
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        if grads_out.len() != self.batch_argmax.len() {
            return Err(TensorError::ShapeMismatch {
                left: vec![grads_out.len()],
                right: vec![self.batch_argmax.len()],
                op: "maxpool backward_input_batch",
            });
        }
        Ok(grads_out
            .iter()
            .zip(&self.batch_argmax)
            .map(|(g, a)| self.route_grad(g, a))
            .collect())
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // No parameters: routing through the per-sample argmaxes is the whole
        // training backward.
        self.backward_input_batch(grads_out)
    }

    fn supports_batched_train(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// Average pooling with square window and matching stride.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    window: usize,
    in_shape: (usize, usize, usize),
}

impl AvgPool2d {
    /// Creates an average pool of `window`×`window` (stride = window).
    ///
    /// # Panics
    ///
    /// Panics if the window does not divide the spatial dimensions.
    pub fn new(in_shape: (usize, usize, usize), window: usize) -> Self {
        assert!(
            window > 0 && in_shape.1.is_multiple_of(window) && in_shape.2.is_multiple_of(window)
        );
        Self { window, in_shape }
    }

    /// Output shape `(C, H/window, W/window)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        let (c, h, w) = self.in_shape;
        (c, h / self.window, w / self.window)
    }
}

impl Layer for AvgPool2d {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let (c, h, w) = self.in_shape;
        let (oc, oh, ow) = self.out_shape();
        let norm = 1.0 / (self.window * self.window) as f32;
        let mut out = Tensor::zeros(&[oc, oh, ow]);
        let x = input.data();
        let buf = out.data_mut();
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..self.window {
                        for kx in 0..self.window {
                            acc += x[(ci * h + oy * self.window + ky) * w + ox * self.window + kx];
                        }
                    }
                    buf[(ci * oh + oy) * ow + ox] = acc * norm;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (c, h, w) = self.in_shape;
        let (_, oh, ow) = self.out_shape();
        let norm = 1.0 / (self.window * self.window) as f32;
        let mut dx = Tensor::zeros(&[c, h, w]);
        let g = grad_out.data();
        let buf = dx.data_mut();
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let gv = g[(ci * oh + oy) * ow + ox] * norm;
                    for ky in 0..self.window {
                        for kx in 0..self.window {
                            buf[(ci * h + oy * self.window + ky) * w + ox * self.window + kx] += gv;
                        }
                    }
                }
            }
        }
        dx
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // Average pooling's backward reads no cached state.
        Ok(grads_out.iter().map(|g| self.backward(g)).collect())
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // No parameters and no cached state.
        self.backward_input_batch(grads_out)
    }

    fn supports_batched_train(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }
}

/// Global average pooling: `[C, H, W] -> [C]`.
#[derive(Debug, Clone)]
pub struct GlobalAvgPool {
    in_shape: (usize, usize, usize),
}

impl GlobalAvgPool {
    /// Creates a global average pool over `in_shape`.
    pub fn new(in_shape: (usize, usize, usize)) -> Self {
        Self { in_shape }
    }
}

impl Layer for GlobalAvgPool {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let (c, h, w) = self.in_shape;
        let spatial = h * w;
        let mut out = vec![0.0f32; c];
        for (ci, o) in out.iter_mut().enumerate() {
            *o = input.data()[ci * spatial..(ci + 1) * spatial]
                .iter()
                .sum::<f32>()
                / spatial as f32;
        }
        Tensor::from_slice(&out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (c, h, w) = self.in_shape;
        let spatial = h * w;
        let norm = 1.0 / spatial as f32;
        let mut dx = Tensor::zeros(&[c, h, w]);
        let buf = dx.data_mut();
        for ci in 0..c {
            let gv = grad_out.data()[ci] * norm;
            for v in &mut buf[ci * spatial..(ci + 1) * spatial] {
                *v = gv;
            }
        }
        dx
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // Global average pooling's backward reads no cached state.
        Ok(grads_out.iter().map(|g| self.backward(g)).collect())
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // No parameters and no cached state.
        self.backward_input_batch(grads_out)
    }

    fn supports_batched_train(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_selects_maxima() {
        let mut p = MaxPool2d::new((1, 2, 2), 2);
        let x = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0], &[1, 2, 2]).unwrap();
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[5.0]);
        let dx = p.backward(&Tensor::from_slice(&[1.0]).reshape(&[1, 1, 1]).unwrap());
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 0.0]); // gradient routed to the max
    }

    #[test]
    fn avgpool_averages_and_spreads_gradient() {
        let mut p = AvgPool2d::new((1, 2, 2), 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[2.5]);
        let dx = p.backward(&Tensor::from_vec(vec![4.0], &[1, 1, 1]).unwrap());
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn global_avg_pool_reduces_to_channels() {
        let mut p = GlobalAvgPool::new((2, 2, 2));
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0], &[2, 2, 2]).unwrap();
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[1.0, 2.0]);
        let dx = p.backward(&Tensor::from_slice(&[4.0, 8.0]));
        assert_eq!(dx.at(&[0, 0, 0]), 1.0);
        assert_eq!(dx.at(&[1, 1, 1]), 2.0);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn maxpool_rejects_nondividing_window() {
        MaxPool2d::new((1, 3, 3), 2);
    }
}
