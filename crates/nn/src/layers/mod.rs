//! The layer set used by the model zoo.

mod activation;
mod batchnorm;
mod conv;
mod dense;
mod depthwise;
mod dropout;
mod flatten;
mod pool;
mod residual;
mod squeeze_excite;

pub use activation::{Relu, Sigmoid, TanhLayer};
pub use batchnorm::InstanceNorm2d;
pub use conv::Conv2d;
pub use dense::Dense;
pub use depthwise::DepthwiseConv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use residual::Residual;
pub use squeeze_excite::SqueezeExcite;
