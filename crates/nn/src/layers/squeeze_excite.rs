use crate::layers::Dense;
use crate::{Layer, Mode};
use rand::Rng;
use remix_tensor::{Result, Tensor, TensorError};

/// Squeeze-and-excitation channel gating, as used inside the MBConv blocks of
/// EfficientNetV2.
///
/// `y[c] = x[c] * sigmoid(W2 relu(W1 gap(x)))[c]`.
#[derive(Clone)]
pub struct SqueezeExcite {
    reduce: Dense,
    expand: Dense,
    channels: usize,
    spatial: usize,
    cached_input: Tensor,
    cached_gate: Vec<f32>,
    cached_hidden: Vec<f32>,
    batch_cache: Vec<(Tensor, Vec<f32>, Vec<f32>)>,
}

impl SqueezeExcite {
    /// Creates an SE block over `in_shape = (channels, h, w)` with the hidden
    /// width `channels / reduction` (at least 1).
    pub fn new(in_shape: (usize, usize, usize), reduction: usize, rng: &mut impl Rng) -> Self {
        let (c, h, w) = in_shape;
        let hidden = (c / reduction).max(1);
        Self {
            reduce: Dense::new(c, hidden, rng),
            expand: Dense::new(hidden, c, rng),
            channels: c,
            spatial: h * w,
            cached_input: Tensor::default(),
            cached_gate: Vec::new(),
            cached_hidden: Vec::new(),
            batch_cache: Vec::new(),
        }
    }

    /// One forward pass, returning `(output, gate, hidden)` so callers decide
    /// where the backward caches live (single-sample vs per-batch-sample).
    fn forward_one(&mut self, input: &Tensor, mode: Mode) -> (Tensor, Vec<f32>, Vec<f32>) {
        // squeeze: global average pool
        let mut pooled = vec![0.0f32; self.channels];
        for (c, p) in pooled.iter_mut().enumerate() {
            *p = input.data()[c * self.spatial..(c + 1) * self.spatial]
                .iter()
                .sum::<f32>()
                / self.spatial as f32;
        }
        // excite: reduce -> relu -> expand -> sigmoid
        let h_pre = self.reduce.forward(&Tensor::from_slice(&pooled), mode);
        let h: Vec<f32> = h_pre.data().iter().map(|&v| v.max(0.0)).collect();
        let g_pre = self.expand.forward(&Tensor::from_slice(&h), mode);
        let gate: Vec<f32> = g_pre
            .data()
            .iter()
            .map(|&v| 1.0 / (1.0 + (-v).exp()))
            .collect();
        // scale channels
        let mut out = input.clone();
        {
            let buf = out.data_mut();
            for c in 0..self.channels {
                for v in &mut buf[c * self.spatial..(c + 1) * self.spatial] {
                    *v *= gate[c];
                }
            }
        }
        (out, gate, h)
    }

    /// Input gradient through the gate and the pooled excitation path,
    /// without accumulating the dense sublayers' parameter gradients. The
    /// accumulation order matches [`Layer::backward`] exactly.
    fn input_grad_from(
        &self,
        grad_out: &Tensor,
        input: &Tensor,
        gate: &[f32],
        hidden: &[f32],
    ) -> Tensor {
        // dL/dx (direct path): grad_out * gate
        let mut dx = grad_out.clone();
        {
            let buf = dx.data_mut();
            for c in 0..self.channels {
                for v in &mut buf[c * self.spatial..(c + 1) * self.spatial] {
                    *v *= gate[c];
                }
            }
        }
        // dL/dgate[c] = sum_s grad_out[c,s] * x[c,s]
        let mut dgate = vec![0.0f32; self.channels];
        for (c, d) in dgate.iter_mut().enumerate() {
            *d = grad_out.data()[c * self.spatial..(c + 1) * self.spatial]
                .iter()
                .zip(&input.data()[c * self.spatial..(c + 1) * self.spatial])
                .map(|(&g, &x)| g * x)
                .sum();
        }
        // through sigmoid
        let dg_pre: Vec<f32> = dgate
            .iter()
            .zip(gate)
            .map(|(&d, &g)| d * g * (1.0 - g))
            .collect();
        // through expand dense (input path only)
        let dh = self.expand.input_grad(&Tensor::from_slice(&dg_pre));
        // through relu
        let dh_pre: Vec<f32> = dh
            .data()
            .iter()
            .zip(hidden)
            .map(|(&d, &h)| if h > 0.0 { d } else { 0.0 })
            .collect();
        // through reduce dense (input path only)
        let dpool = self.reduce.input_grad(&Tensor::from_slice(&dh_pre));
        // spread pooled gradient back over spatial positions
        {
            let buf = dx.data_mut();
            let norm = 1.0 / self.spatial as f32;
            for c in 0..self.channels {
                let dv = dpool.data()[c] * norm;
                for v in &mut buf[c * self.spatial..(c + 1) * self.spatial] {
                    *v += dv;
                }
            }
        }
        dx
    }
}

impl std::fmt::Debug for SqueezeExcite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SqueezeExcite(channels={})", self.channels)
    }
}

impl Layer for SqueezeExcite {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let (out, gate, hidden) = self.forward_one(input, mode);
        // The input/gate/hidden triple feeds the *input* gradient, so it is
        // kept in every mode (unlike parameter-gradient caches).
        self.cached_input = input.clone();
        self.cached_gate = gate;
        self.cached_hidden = hidden;
        out
    }

    fn forward_batch(&mut self, inputs: &[Tensor], mode: Mode) -> Result<Vec<Tensor>> {
        let mut outs = Vec::with_capacity(inputs.len());
        let mut cache = Vec::with_capacity(inputs.len());
        for input in inputs {
            let (out, gate, hidden) = self.forward_one(input, mode);
            cache.push((input.clone(), gate, hidden));
            outs.push(out);
        }
        self.batch_cache = cache;
        Ok(outs)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // dL/dx (direct path): grad_out * gate
        let mut dx = grad_out.clone();
        {
            let buf = dx.data_mut();
            for c in 0..self.channels {
                for v in &mut buf[c * self.spatial..(c + 1) * self.spatial] {
                    *v *= self.cached_gate[c];
                }
            }
        }
        // dL/dgate[c] = sum_s grad_out[c,s] * x[c,s]
        let mut dgate = vec![0.0f32; self.channels];
        for (c, d) in dgate.iter_mut().enumerate() {
            *d = grad_out.data()[c * self.spatial..(c + 1) * self.spatial]
                .iter()
                .zip(&self.cached_input.data()[c * self.spatial..(c + 1) * self.spatial])
                .map(|(&g, &x)| g * x)
                .sum();
        }
        // through sigmoid
        let dg_pre: Vec<f32> = dgate
            .iter()
            .zip(&self.cached_gate)
            .map(|(&d, &g)| d * g * (1.0 - g))
            .collect();
        // through expand dense
        let dh = self.expand.backward(&Tensor::from_slice(&dg_pre));
        // through relu
        let dh_pre: Vec<f32> = dh
            .data()
            .iter()
            .zip(&self.cached_hidden)
            .map(|(&d, &h)| if h > 0.0 { d } else { 0.0 })
            .collect();
        // through reduce dense
        let dpool = self.reduce.backward(&Tensor::from_slice(&dh_pre));
        // spread pooled gradient back over spatial positions
        {
            let buf = dx.data_mut();
            let norm = 1.0 / self.spatial as f32;
            for c in 0..self.channels {
                let dv = dpool.data()[c] * norm;
                for v in &mut buf[c * self.spatial..(c + 1) * self.spatial] {
                    *v += dv;
                }
            }
        }
        dx
    }

    fn backward_input(&mut self, grad_out: &Tensor) -> Tensor {
        self.input_grad_from(
            grad_out,
            &self.cached_input,
            &self.cached_gate,
            &self.cached_hidden,
        )
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        if grads_out.len() != self.batch_cache.len() {
            return Err(TensorError::ShapeMismatch {
                left: vec![grads_out.len()],
                right: vec![self.batch_cache.len()],
                op: "squeeze_excite backward_input_batch",
            });
        }
        Ok(grads_out
            .iter()
            .zip(&self.batch_cache)
            .map(|(g, (input, gate, hidden))| self.input_grad_from(g, input, gate, hidden))
            .collect())
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.reduce.visit_params(visit);
        self.expand.visit_params(visit);
    }

    fn prepare_inference(&mut self) {
        // The SE excitation path runs its Dense sublayers per sample (matvec,
        // never the batched GEMM), so freezing them installs packs that stay
        // unused — but forwarding keeps the freeze invariant uniform should
        // they ever batch.
        self.reduce.prepare_inference();
        self.expand.prepare_inference();
    }

    fn name(&self) -> &'static str {
        "SqueezeExcite"
    }

    fn param_count(&self) -> usize {
        self.reduce.param_count() + self.expand.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn output_is_gated_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut se = SqueezeExcite::new((2, 2, 2), 2, &mut rng);
        let x = Tensor::ones(&[2, 2, 2]);
        let y = se.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), x.shape());
        // each channel is uniformly scaled by a gate in (0, 1)
        for c in 0..2 {
            let ch = y.index_axis0(c).unwrap();
            let first = ch.data()[0];
            assert!(first > 0.0 && first < 1.0);
            assert!(ch.data().iter().all(|&v| (v - first).abs() < 1e-6));
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut se = SqueezeExcite::new((2, 3, 3), 2, &mut rng);
        let x = Tensor::randn(&[2, 3, 3], 1.0, &mut rng);
        let y = se.forward(&x, Mode::Train);
        let dx = se.backward(&Tensor::ones(y.shape()));
        let eps = 1e-2;
        for &i in &[0usize, 5, 13, 17] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = se.forward(&xp, Mode::Train);
            let num = (yp.sum() - y.sum()) / eps;
            assert!(
                (num - dx.data()[i]).abs() < 5e-2,
                "grad at {i}: fd={num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn has_trainable_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let se = SqueezeExcite::new((8, 2, 2), 4, &mut rng);
        // reduce: 8*2+2, expand: 2*8+8
        assert_eq!(se.param_count(), 18 + 24);
    }

    #[test]
    fn input_gradient_matches_full_backward() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut se = SqueezeExcite::new((4, 3, 3), 2, &mut rng);
        let x = Tensor::randn(&[4, 3, 3], 1.0, &mut rng);
        let g = Tensor::randn(&[4, 3, 3], 1.0, &mut rng);
        se.forward(&x, Mode::Train);
        let dx_full = se.backward(&g);
        se.forward(&x, Mode::Inference);
        let dx_input = se.backward_input(&g);
        assert_eq!(dx_full.data(), dx_input.data());
    }
}
