use crate::{Layer, Mode};
use rand::Rng;
use remix_tensor::{PackedOperand, Result, Tensor};

/// Fully-connected layer: `y = W x + b` over rank-1 inputs.
///
/// Weights use He initialization, appropriate for the ReLU networks of the
/// zoo.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Tensor, // [out, in]
    bias: Tensor,   // [out]
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Tensor,
    batch_inputs: Vec<Tensor>,
    /// Prepacked weight operands from [`Layer::prepare_inference`]; dropped
    /// on any parameter mutation (see [`Layer::visit_params`]).
    packs: Option<DensePacks>,
    scratch: DenseScratch,
}

/// Both orientations of the frozen weight: `fwd` serves the batched
/// `W · X` forward product, `bwd` the batched `Wᵀ · G` input gradient.
#[derive(Debug, Clone)]
struct DensePacks {
    fwd: PackedOperand,
    bwd: PackedOperand,
}

/// Reusable buffers for the batched GEMMs, mirroring `ConvScratch`: each
/// call site owns its set so sizes stay stable across steps and the `_into`
/// kernels never reallocate or zero-fill in steady state.
#[derive(Debug, Clone, Default)]
struct DenseScratch {
    xmat: Vec<f32>,       // [in, B] column-major batch input
    fwd_out: Vec<f32>,    // [out, B] forward product
    fwd_packed: Vec<f32>, // packed input panels for the forward GEMM
    gmat: Vec<f32>,       // [out, B] concatenated output gradients
    bwd_out: Vec<f32>,    // [in, B] dX product
    bwd_packed: Vec<f32>, // packed gradient panels for the dX GEMM
}

impl Dense {
    /// Creates a dense layer mapping `in_dim -> out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let std = (2.0 / in_dim as f32).sqrt();
        Self {
            weight: Tensor::randn(&[out_dim, in_dim], std, rng),
            bias: Tensor::zeros(&[out_dim]),
            grad_w: Tensor::zeros(&[out_dim, in_dim]),
            grad_b: Tensor::zeros(&[out_dim]),
            cached_input: Tensor::default(),
            batch_inputs: Vec::new(),
            packs: None,
            scratch: DenseScratch::default(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Input gradient `dx = Wᵀ g` without touching parameter gradients or
    /// cached state. Shared by [`Layer::backward`], [`Layer::backward_input`]
    /// and composite layers (squeeze-excitation) that only need the input
    /// path.
    /// `dW += g ⊗ x ; db += g` — the parameter half of [`Layer::backward`]
    /// against an explicit input, sharing its exact accumulation chains
    /// (including the zero-gradient row skip).
    fn accumulate_param_grads(&mut self, grad_out: &Tensor, x: &Tensor) {
        let in_dim = self.in_dim();
        let gw = self.grad_w.data_mut();
        for (i, &g) in grad_out.data().iter().enumerate() {
            if g != 0.0 {
                let row = &mut gw[i * in_dim..(i + 1) * in_dim];
                for (w, &xv) in row.iter_mut().zip(x.data()) {
                    *w += g * xv;
                }
            }
        }
        self.grad_b.add_assign(grad_out).expect("bias grad length");
    }

    pub(crate) fn input_grad(&self, grad_out: &Tensor) -> Tensor {
        let in_dim = self.in_dim();
        let mut dx = vec![0.0f32; in_dim];
        let w = self.weight.data();
        for (i, &g) in grad_out.data().iter().enumerate() {
            if g != 0.0 {
                let row = &w[i * in_dim..(i + 1) * in_dim];
                for (d, &wv) in dx.iter_mut().zip(row) {
                    *d += g * wv;
                }
            }
        }
        Tensor::from_slice(&dx)
    }

    /// Batched `dX = Wᵀ · G` through one transpose-free GEMM into reused
    /// scratch (prepacked when frozen): each dx element's chain runs over the
    /// out_dim axis within a single sample's column, matching
    /// [`Dense::input_grad`] bitwise on finite data — the same ascending-i
    /// order, and skipping `g == 0.0` products is bitwise-neutral (see the
    /// zero-skip note on `remix-tensor`'s reference kernel).
    fn batched_input_grads(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        let (out_dim, in_dim) = (self.out_dim(), self.in_dim());
        let batch = grads_out.len();
        let mut gmat = std::mem::take(&mut self.scratch.gmat);
        if gmat.len() != out_dim * batch {
            gmat.clear();
            gmat.resize(out_dim * batch, 0.0);
        }
        for (s, g) in grads_out.iter().enumerate() {
            debug_assert_eq!(g.len(), out_dim, "dense gradient length");
            for (i, &v) in g.data().iter().enumerate() {
                gmat[i * batch + s] = v;
            }
        }
        let gmat = Tensor::from_vec(gmat, &[out_dim, batch])?;
        let mut dxmat = std::mem::take(&mut self.scratch.bwd_out);
        let gemm = match &self.packs {
            Some(p) => {
                p.bwd
                    .matmul_at_b_prepacked_into(&gmat, &mut dxmat, &mut self.scratch.bwd_packed)
            }
            None => self
                .weight
                .matmul_at_b_into(&gmat, &mut dxmat, &mut self.scratch.bwd_packed),
        };
        self.scratch.gmat = gmat.into_vec();
        if let Err(e) = gemm {
            self.scratch.bwd_out = dxmat;
            return Err(e);
        }
        let grads = (0..batch)
            .map(|s| {
                let data = (0..in_dim).map(|j| dxmat[j * batch + s]).collect();
                Tensor::from_vec(data, &[in_dim])
            })
            .collect();
        self.scratch.bwd_out = dxmat;
        grads
    }
}

impl Layer for Dense {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        debug_assert_eq!(input.len(), self.in_dim(), "dense input length");
        let flat = if input.rank() == 1 {
            input.clone()
        } else {
            input.flatten()
        };
        let mut out = self.weight.matvec(&flat).expect("dense shape checked");
        out.add_assign(&self.bias).expect("bias length");
        if mode != Mode::Inference {
            // The cached input only feeds the dW outer product, which the
            // inference-mode input gradient never computes.
            self.cached_input = flat;
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        debug_assert_eq!(grad_out.len(), self.out_dim());
        // dW += g ⊗ x ; db += g ; dx = Wᵀ g
        let x = std::mem::take(&mut self.cached_input);
        self.accumulate_param_grads(grad_out, &x);
        self.cached_input = x;
        self.input_grad(grad_out)
    }

    fn backward_params_only(&mut self, grad_out: &Tensor) {
        // Root-layer training backward: skip the dx = Wᵀg product — the
        // input gradient is never consumed.
        debug_assert_eq!(grad_out.len(), self.out_dim());
        let x = std::mem::take(&mut self.cached_input);
        self.accumulate_param_grads(grad_out, &x);
        self.cached_input = x;
    }

    fn backward_input(&mut self, grad_out: &Tensor) -> Tensor {
        self.input_grad(grad_out)
    }

    fn forward_batch(&mut self, inputs: &[Tensor], mode: Mode) -> Result<Vec<Tensor>> {
        let (out_dim, in_dim) = (self.out_dim(), self.in_dim());
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let flats: Vec<Tensor> = inputs
            .iter()
            .map(|x| {
                debug_assert_eq!(x.len(), in_dim, "dense input length");
                if x.rank() == 1 {
                    x.clone()
                } else {
                    x.flatten()
                }
            })
            .collect();
        let batch = flats.len();
        // Columns are samples: big[i][s] = Σ_j w[i][j]·x_s[j], the same
        // ascending-j chain as the per-sample matvec, so adding the bias last
        // reproduces forward() bitwise. The GEMM runs into reused scratch,
        // through the frozen weight pack when one is installed.
        let mut xmat = std::mem::take(&mut self.scratch.xmat);
        if xmat.len() != in_dim * batch {
            xmat.clear();
            xmat.resize(in_dim * batch, 0.0);
        }
        for (s, x) in flats.iter().enumerate() {
            for (j, &v) in x.data().iter().enumerate() {
                xmat[j * batch + s] = v;
            }
        }
        let xmat = Tensor::from_vec(xmat, &[in_dim, batch])?;
        let mut big = std::mem::take(&mut self.scratch.fwd_out);
        let gemm = match &self.packs {
            Some(p) => p
                .fwd
                .matmul_prepacked_into(&xmat, &mut big, &mut self.scratch.fwd_packed),
            None => self
                .weight
                .matmul_into(&xmat, &mut big, &mut self.scratch.fwd_packed),
        };
        self.scratch.xmat = xmat.into_vec();
        if let Err(e) = gemm {
            self.scratch.fwd_out = big;
            return Err(e);
        }
        let bias = self.bias.data();
        let outs = (0..batch)
            .map(|s| {
                let data = (0..out_dim).map(|i| big[i * batch + s] + bias[i]).collect();
                Tensor::from_vec(data, &[out_dim])
            })
            .collect::<Result<Vec<_>>>();
        self.scratch.fwd_out = big;
        let outs = outs?;
        if mode != Mode::Inference {
            self.batch_inputs = flats;
        } else {
            self.batch_inputs.clear();
        }
        Ok(outs)
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // dx = Wᵀ g needs no cached state. A frozen layer routes the batch
        // through the prepacked Wᵀ·G GEMM — bit-identical to the per-sample
        // kernel (see `batched_input_grads`). Unfrozen layers keep the
        // per-sample loop, which skips the gmat transpose-copy for the
        // common single-gradient XAI call.
        if self.packs.is_some() && !grads_out.is_empty() {
            self.batched_input_grads(grads_out)
        } else {
            Ok(grads_out.iter().map(|g| self.input_grad(g)).collect())
        }
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        let inputs = std::mem::take(&mut self.batch_inputs);
        assert_eq!(
            grads_out.len(),
            inputs.len(),
            "backward_batch batch size must match the preceding forward_batch"
        );
        if grads_out.is_empty() {
            return Ok(Vec::new());
        }
        // dW/db accumulate per sample in batch order — the exact chains of
        // batch_size backward() calls. Fusing the per-sample outer products
        // into one GEMM would merge those chains and break bit-identity.
        for (g, x) in grads_out.iter().zip(&inputs) {
            self.accumulate_param_grads(g, x);
        }
        self.batched_input_grads(grads_out)
    }

    fn backward_batch_params_only(&mut self, grads_out: &[Tensor]) -> Result<()> {
        let inputs = std::mem::take(&mut self.batch_inputs);
        assert_eq!(
            grads_out.len(),
            inputs.len(),
            "backward_batch batch size must match the preceding forward_batch"
        );
        // Root-layer training backward: the per-sample dW/db chains of
        // backward_batch with the dX GEMM skipped.
        for (g, x) in grads_out.iter().zip(&inputs) {
            self.accumulate_param_grads(g, x);
        }
        Ok(())
    }

    fn supports_batched_train(&self) -> bool {
        true
    }

    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        // Parameters are about to be mutated: any frozen weight pack is stale.
        self.packs = None;
        visit(&mut self.weight, &mut self.grad_w);
        visit(&mut self.bias, &mut self.grad_b);
    }

    fn prepare_inference(&mut self) {
        self.packs = Some(DensePacks {
            fwd: self.weight.prepack_a().expect("dense weight is rank 2"),
            bwd: self.weight.prepack_at().expect("dense weight is rank 2"),
        });
    }

    fn name(&self) -> &'static str {
        "Dense"
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_computes_affine_map() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(2, 2, &mut rng);
        // overwrite with known weights
        d.weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        d.bias = Tensor::from_slice(&[0.5, -0.5]);
        let y = d.forward(&Tensor::from_slice(&[1.0, 1.0]), Mode::Eval);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::from_slice(&[0.3, -0.7, 0.9]);
        let y = d.forward(&x, Mode::Train);
        // scalar loss = sum(y); dL/dy = ones
        let dx = d.backward(&Tensor::ones(&[2]));
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = d.forward(&xp, Mode::Train);
            let num = (yp.sum() - y.sum()) / eps;
            assert!((num - dx.data()[i]).abs() < 1e-2, "input grad {i}");
        }
    }

    #[test]
    fn weight_gradient_accumulates() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dense::new(2, 1, &mut rng);
        let x = Tensor::from_slice(&[1.0, 2.0]);
        d.forward(&x, Mode::Train);
        d.backward(&Tensor::from_slice(&[1.0]));
        d.forward(&x, Mode::Train);
        d.backward(&Tensor::from_slice(&[1.0]));
        assert_eq!(d.grad_w.data(), &[2.0, 4.0]);
        assert_eq!(d.grad_b.data(), &[2.0]);
        d.zero_grads();
        assert_eq!(d.grad_w.data(), &[0.0, 0.0]);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Dense::new(4, 3, &mut rng);
        assert_eq!(d.param_count(), 15);
    }
}
