use crate::{Layer, Mode};
use rand::Rng;
use remix_tensor::{Result, Tensor};

/// Fully-connected layer: `y = W x + b` over rank-1 inputs.
///
/// Weights use He initialization, appropriate for the ReLU networks of the
/// zoo.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Tensor, // [out, in]
    bias: Tensor,   // [out]
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Tensor,
}

impl Dense {
    /// Creates a dense layer mapping `in_dim -> out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let std = (2.0 / in_dim as f32).sqrt();
        Self {
            weight: Tensor::randn(&[out_dim, in_dim], std, rng),
            bias: Tensor::zeros(&[out_dim]),
            grad_w: Tensor::zeros(&[out_dim, in_dim]),
            grad_b: Tensor::zeros(&[out_dim]),
            cached_input: Tensor::default(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Input gradient `dx = Wᵀ g` without touching parameter gradients or
    /// cached state. Shared by [`Layer::backward`], [`Layer::backward_input`]
    /// and composite layers (squeeze-excitation) that only need the input
    /// path.
    pub(crate) fn input_grad(&self, grad_out: &Tensor) -> Tensor {
        let in_dim = self.in_dim();
        let mut dx = vec![0.0f32; in_dim];
        let w = self.weight.data();
        for (i, &g) in grad_out.data().iter().enumerate() {
            if g != 0.0 {
                let row = &w[i * in_dim..(i + 1) * in_dim];
                for (d, &wv) in dx.iter_mut().zip(row) {
                    *d += g * wv;
                }
            }
        }
        Tensor::from_slice(&dx)
    }
}

impl Layer for Dense {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        debug_assert_eq!(input.len(), self.in_dim(), "dense input length");
        let flat = if input.rank() == 1 {
            input.clone()
        } else {
            input.flatten()
        };
        let mut out = self.weight.matvec(&flat).expect("dense shape checked");
        out.add_assign(&self.bias).expect("bias length");
        if mode != Mode::Inference {
            // The cached input only feeds the dW outer product, which the
            // inference-mode input gradient never computes.
            self.cached_input = flat;
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (out_dim, in_dim) = (self.out_dim(), self.in_dim());
        debug_assert_eq!(grad_out.len(), out_dim);
        // dW += g ⊗ x ; db += g ; dx = Wᵀ g
        let gw = self.grad_w.data_mut();
        let x = self.cached_input.data();
        for (i, &g) in grad_out.data().iter().enumerate() {
            if g != 0.0 {
                let row = &mut gw[i * in_dim..(i + 1) * in_dim];
                for (w, &xv) in row.iter_mut().zip(x) {
                    *w += g * xv;
                }
            }
        }
        self.grad_b.add_assign(grad_out).expect("bias grad length");
        self.input_grad(grad_out)
    }

    fn backward_input(&mut self, grad_out: &Tensor) -> Tensor {
        self.input_grad(grad_out)
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // dx = Wᵀ g needs no cached state, so the batch is just the
        // per-sample kernel applied in order (bit-identical by construction;
        // the matvec accumulation order must not change, so no batched
        // matmul here).
        Ok(grads_out.iter().map(|g| self.input_grad(g)).collect())
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visit(&mut self.weight, &mut self.grad_w);
        visit(&mut self.bias, &mut self.grad_b);
    }

    fn name(&self) -> &'static str {
        "Dense"
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_computes_affine_map() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(2, 2, &mut rng);
        // overwrite with known weights
        d.weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        d.bias = Tensor::from_slice(&[0.5, -0.5]);
        let y = d.forward(&Tensor::from_slice(&[1.0, 1.0]), Mode::Eval);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::from_slice(&[0.3, -0.7, 0.9]);
        let y = d.forward(&x, Mode::Train);
        // scalar loss = sum(y); dL/dy = ones
        let dx = d.backward(&Tensor::ones(&[2]));
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = d.forward(&xp, Mode::Train);
            let num = (yp.sum() - y.sum()) / eps;
            assert!((num - dx.data()[i]).abs() < 1e-2, "input grad {i}");
        }
    }

    #[test]
    fn weight_gradient_accumulates() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dense::new(2, 1, &mut rng);
        let x = Tensor::from_slice(&[1.0, 2.0]);
        d.forward(&x, Mode::Train);
        d.backward(&Tensor::from_slice(&[1.0]));
        d.forward(&x, Mode::Train);
        d.backward(&Tensor::from_slice(&[1.0]));
        assert_eq!(d.grad_w.data(), &[2.0, 4.0]);
        assert_eq!(d.grad_b.data(), &[2.0]);
        d.zero_grads();
        assert_eq!(d.grad_w.data(), &[0.0, 0.0]);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Dense::new(4, 3, &mut rng);
        assert_eq!(d.param_count(), 15);
    }
}
