use crate::{Layer, Mode};
use rand::Rng;
use remix_tensor::{Result, Tensor};

/// Fully-connected layer: `y = W x + b` over rank-1 inputs.
///
/// Weights use He initialization, appropriate for the ReLU networks of the
/// zoo.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Tensor, // [out, in]
    bias: Tensor,   // [out]
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Tensor,
    batch_inputs: Vec<Tensor>,
}

impl Dense {
    /// Creates a dense layer mapping `in_dim -> out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let std = (2.0 / in_dim as f32).sqrt();
        Self {
            weight: Tensor::randn(&[out_dim, in_dim], std, rng),
            bias: Tensor::zeros(&[out_dim]),
            grad_w: Tensor::zeros(&[out_dim, in_dim]),
            grad_b: Tensor::zeros(&[out_dim]),
            cached_input: Tensor::default(),
            batch_inputs: Vec::new(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Input gradient `dx = Wᵀ g` without touching parameter gradients or
    /// cached state. Shared by [`Layer::backward`], [`Layer::backward_input`]
    /// and composite layers (squeeze-excitation) that only need the input
    /// path.
    /// `dW += g ⊗ x ; db += g` — the parameter half of [`Layer::backward`]
    /// against an explicit input, sharing its exact accumulation chains
    /// (including the zero-gradient row skip).
    fn accumulate_param_grads(&mut self, grad_out: &Tensor, x: &Tensor) {
        let in_dim = self.in_dim();
        let gw = self.grad_w.data_mut();
        for (i, &g) in grad_out.data().iter().enumerate() {
            if g != 0.0 {
                let row = &mut gw[i * in_dim..(i + 1) * in_dim];
                for (w, &xv) in row.iter_mut().zip(x.data()) {
                    *w += g * xv;
                }
            }
        }
        self.grad_b.add_assign(grad_out).expect("bias grad length");
    }

    pub(crate) fn input_grad(&self, grad_out: &Tensor) -> Tensor {
        let in_dim = self.in_dim();
        let mut dx = vec![0.0f32; in_dim];
        let w = self.weight.data();
        for (i, &g) in grad_out.data().iter().enumerate() {
            if g != 0.0 {
                let row = &w[i * in_dim..(i + 1) * in_dim];
                for (d, &wv) in dx.iter_mut().zip(row) {
                    *d += g * wv;
                }
            }
        }
        Tensor::from_slice(&dx)
    }
}

impl Layer for Dense {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        debug_assert_eq!(input.len(), self.in_dim(), "dense input length");
        let flat = if input.rank() == 1 {
            input.clone()
        } else {
            input.flatten()
        };
        let mut out = self.weight.matvec(&flat).expect("dense shape checked");
        out.add_assign(&self.bias).expect("bias length");
        if mode != Mode::Inference {
            // The cached input only feeds the dW outer product, which the
            // inference-mode input gradient never computes.
            self.cached_input = flat;
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        debug_assert_eq!(grad_out.len(), self.out_dim());
        // dW += g ⊗ x ; db += g ; dx = Wᵀ g
        let x = std::mem::take(&mut self.cached_input);
        self.accumulate_param_grads(grad_out, &x);
        self.cached_input = x;
        self.input_grad(grad_out)
    }

    fn backward_params_only(&mut self, grad_out: &Tensor) {
        // Root-layer training backward: skip the dx = Wᵀg product — the
        // input gradient is never consumed.
        debug_assert_eq!(grad_out.len(), self.out_dim());
        let x = std::mem::take(&mut self.cached_input);
        self.accumulate_param_grads(grad_out, &x);
        self.cached_input = x;
    }

    fn backward_input(&mut self, grad_out: &Tensor) -> Tensor {
        self.input_grad(grad_out)
    }

    fn forward_batch(&mut self, inputs: &[Tensor], mode: Mode) -> Result<Vec<Tensor>> {
        let (out_dim, in_dim) = (self.out_dim(), self.in_dim());
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let flats: Vec<Tensor> = inputs
            .iter()
            .map(|x| {
                debug_assert_eq!(x.len(), in_dim, "dense input length");
                if x.rank() == 1 {
                    x.clone()
                } else {
                    x.flatten()
                }
            })
            .collect();
        let batch = flats.len();
        // Columns are samples: big[i][s] = Σ_j w[i][j]·x_s[j], the same
        // ascending-j chain as the per-sample matvec, so adding the bias last
        // reproduces forward() bitwise.
        let mut xmat = vec![0.0f32; in_dim * batch];
        for (s, x) in flats.iter().enumerate() {
            for (j, &v) in x.data().iter().enumerate() {
                xmat[j * batch + s] = v;
            }
        }
        let xmat = Tensor::from_vec(xmat, &[in_dim, batch])?;
        let big = self.weight.matmul(&xmat)?;
        let bias = self.bias.data();
        let outs = (0..batch)
            .map(|s| {
                let data = (0..out_dim)
                    .map(|i| big.data()[i * batch + s] + bias[i])
                    .collect();
                Tensor::from_vec(data, &[out_dim])
            })
            .collect::<Result<Vec<_>>>()?;
        if mode != Mode::Inference {
            self.batch_inputs = flats;
        } else {
            self.batch_inputs.clear();
        }
        Ok(outs)
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // dx = Wᵀ g needs no cached state, so the batch is just the
        // per-sample kernel applied in order (bit-identical by construction;
        // the matvec accumulation order must not change, so no batched
        // matmul here).
        Ok(grads_out.iter().map(|g| self.input_grad(g)).collect())
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        let (out_dim, in_dim) = (self.out_dim(), self.in_dim());
        let inputs = std::mem::take(&mut self.batch_inputs);
        assert_eq!(
            grads_out.len(),
            inputs.len(),
            "backward_batch batch size must match the preceding forward_batch"
        );
        if grads_out.is_empty() {
            return Ok(Vec::new());
        }
        // dW/db accumulate per sample in batch order — the exact chains of
        // batch_size backward() calls. Fusing the per-sample outer products
        // into one GEMM would merge those chains and break bit-identity.
        for (g, x) in grads_out.iter().zip(&inputs) {
            self.accumulate_param_grads(g, x);
        }
        // dX = Wᵀ·G is one transpose-free GEMM: each dx element's chain runs
        // over the out_dim axis within a single sample's column, matching
        // input_grad() bitwise on finite data.
        let batch = grads_out.len();
        let mut gmat = vec![0.0f32; out_dim * batch];
        for (s, g) in grads_out.iter().enumerate() {
            for (i, &v) in g.data().iter().enumerate() {
                gmat[i * batch + s] = v;
            }
        }
        let gmat = Tensor::from_vec(gmat, &[out_dim, batch])?;
        let dxmat = self.weight.matmul_at_b(&gmat)?;
        (0..batch)
            .map(|s| {
                let data = (0..in_dim).map(|j| dxmat.data()[j * batch + s]).collect();
                Tensor::from_vec(data, &[in_dim])
            })
            .collect()
    }

    fn backward_batch_params_only(&mut self, grads_out: &[Tensor]) -> Result<()> {
        let inputs = std::mem::take(&mut self.batch_inputs);
        assert_eq!(
            grads_out.len(),
            inputs.len(),
            "backward_batch batch size must match the preceding forward_batch"
        );
        // Root-layer training backward: the per-sample dW/db chains of
        // backward_batch with the dX GEMM skipped.
        for (g, x) in grads_out.iter().zip(&inputs) {
            self.accumulate_param_grads(g, x);
        }
        Ok(())
    }

    fn supports_batched_train(&self) -> bool {
        true
    }

    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visit(&mut self.weight, &mut self.grad_w);
        visit(&mut self.bias, &mut self.grad_b);
    }

    fn name(&self) -> &'static str {
        "Dense"
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_computes_affine_map() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(2, 2, &mut rng);
        // overwrite with known weights
        d.weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        d.bias = Tensor::from_slice(&[0.5, -0.5]);
        let y = d.forward(&Tensor::from_slice(&[1.0, 1.0]), Mode::Eval);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::from_slice(&[0.3, -0.7, 0.9]);
        let y = d.forward(&x, Mode::Train);
        // scalar loss = sum(y); dL/dy = ones
        let dx = d.backward(&Tensor::ones(&[2]));
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = d.forward(&xp, Mode::Train);
            let num = (yp.sum() - y.sum()) / eps;
            assert!((num - dx.data()[i]).abs() < 1e-2, "input grad {i}");
        }
    }

    #[test]
    fn weight_gradient_accumulates() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dense::new(2, 1, &mut rng);
        let x = Tensor::from_slice(&[1.0, 2.0]);
        d.forward(&x, Mode::Train);
        d.backward(&Tensor::from_slice(&[1.0]));
        d.forward(&x, Mode::Train);
        d.backward(&Tensor::from_slice(&[1.0]));
        assert_eq!(d.grad_w.data(), &[2.0, 4.0]);
        assert_eq!(d.grad_b.data(), &[2.0]);
        d.zero_grads();
        assert_eq!(d.grad_w.data(), &[0.0, 0.0]);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Dense::new(4, 3, &mut rng);
        assert_eq!(d.param_count(), 15);
    }
}
