use crate::{Layer, Mode};
use remix_tensor::{Result, Tensor, TensorError};

/// Checks that a batched backward call matches the batch size of the
/// preceding `forward_batch`.
fn check_batch(got: usize, cached: usize, op: &'static str) -> Result<()> {
    if got == cached {
        Ok(())
    } else {
        Err(TensorError::ShapeMismatch {
            left: vec![got],
            right: vec![cached],
            op,
        })
    }
}

/// Rectified linear unit.
#[derive(Debug, Default, Clone)]
pub struct Relu {
    mask: Vec<bool>,
    batch_masks: Vec<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.mask = input.data().iter().map(|&v| v > 0.0).collect();
        input.map(|v| v.max(0.0))
    }

    fn forward_batch(&mut self, inputs: &[Tensor], _mode: Mode) -> Result<Vec<Tensor>> {
        // Refill the retained per-sample mask vectors in place: at batch 32 a
        // fresh Vec<bool> per sample per step is pure allocator churn.
        self.batch_masks.resize(inputs.len(), Vec::new());
        for (mask, x) in self.batch_masks.iter_mut().zip(inputs) {
            mask.clear();
            mask.extend(x.data().iter().map(|&v| v > 0.0));
        }
        Ok(inputs.iter().map(|x| x.map(|v| v.max(0.0))).collect())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let data = grad_out
            .data()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_out.shape()).expect("same shape")
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        check_batch(
            grads_out.len(),
            self.batch_masks.len(),
            "relu backward_input_batch",
        )?;
        grads_out
            .iter()
            .zip(&self.batch_masks)
            .map(|(g, mask)| {
                let data = g
                    .data()
                    .iter()
                    .zip(mask)
                    .map(|(&g, &m)| if m { g } else { 0.0 })
                    .collect();
                Tensor::from_vec(data, g.shape())
            })
            .collect()
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // No parameters: the training backward is the input backward.
        self.backward_input_batch(grads_out)
    }

    fn supports_batched_train(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

/// Logistic sigmoid.
#[derive(Debug, Default, Clone)]
pub struct Sigmoid {
    cached_out: Tensor,
    batch_outs: Vec<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let out = input.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.cached_out = out.clone();
        out
    }

    fn forward_batch(&mut self, inputs: &[Tensor], _mode: Mode) -> Result<Vec<Tensor>> {
        let outs: Vec<Tensor> = inputs
            .iter()
            .map(|x| x.map(|v| 1.0 / (1.0 + (-v).exp())))
            .collect();
        self.batch_outs = outs.clone();
        Ok(outs)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let data = grad_out
            .data()
            .iter()
            .zip(self.cached_out.data())
            .map(|(&g, &y)| g * y * (1.0 - y))
            .collect();
        Tensor::from_vec(data, grad_out.shape()).expect("same shape")
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        check_batch(
            grads_out.len(),
            self.batch_outs.len(),
            "sigmoid backward_input_batch",
        )?;
        grads_out
            .iter()
            .zip(&self.batch_outs)
            .map(|(g, y)| {
                let data = g
                    .data()
                    .iter()
                    .zip(y.data())
                    .map(|(&g, &y)| g * y * (1.0 - y))
                    .collect();
                Tensor::from_vec(data, g.shape())
            })
            .collect()
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // No parameters: the training backward is the input backward.
        self.backward_input_batch(grads_out)
    }

    fn supports_batched_train(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "Sigmoid"
    }
}

/// Hyperbolic tangent.
#[derive(Debug, Default, Clone)]
pub struct TanhLayer {
    cached_out: Tensor,
    batch_outs: Vec<Tensor>,
}

impl TanhLayer {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for TanhLayer {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let out = input.map(f32::tanh);
        self.cached_out = out.clone();
        out
    }

    fn forward_batch(&mut self, inputs: &[Tensor], _mode: Mode) -> Result<Vec<Tensor>> {
        let outs: Vec<Tensor> = inputs.iter().map(|x| x.map(f32::tanh)).collect();
        self.batch_outs = outs.clone();
        Ok(outs)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let data = grad_out
            .data()
            .iter()
            .zip(self.cached_out.data())
            .map(|(&g, &y)| g * (1.0 - y * y))
            .collect();
        Tensor::from_vec(data, grad_out.shape()).expect("same shape")
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        check_batch(
            grads_out.len(),
            self.batch_outs.len(),
            "tanh backward_input_batch",
        )?;
        grads_out
            .iter()
            .zip(&self.batch_outs)
            .map(|(g, y)| {
                let data = g
                    .data()
                    .iter()
                    .zip(y.data())
                    .map(|(&g, &y)| g * (1.0 - y * y))
                    .collect();
                Tensor::from_vec(data, g.shape())
            })
            .collect()
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // No parameters: the training backward is the input backward.
        self.backward_input_batch(grads_out)
    }

    fn supports_batched_train(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::from_slice(&[-1.0, 2.0]), Mode::Eval);
        assert_eq!(y.data(), &[0.0, 2.0]);
        let dx = r.backward(&Tensor::from_slice(&[5.0, 5.0]));
        assert_eq!(dx.data(), &[0.0, 5.0]);
    }

    #[test]
    fn sigmoid_centre_and_gradient() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::from_slice(&[0.0]), Mode::Eval);
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        let dx = s.backward(&Tensor::from_slice(&[1.0]));
        assert!((dx.data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_matches_identity() {
        let mut t = TanhLayer::new();
        let x = Tensor::from_slice(&[0.3]);
        let y = t.forward(&x, Mode::Eval);
        let dx = t.backward(&Tensor::from_slice(&[1.0]));
        let expected = 1.0 - y.data()[0] * y.data()[0];
        assert!((dx.data()[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn batched_relu_keeps_per_sample_masks() {
        let mut r = Relu::new();
        let xs = [
            Tensor::from_slice(&[-1.0, 2.0]),
            Tensor::from_slice(&[3.0, -4.0]),
        ];
        let ys = r.forward_batch(&xs, Mode::Inference).unwrap();
        assert_eq!(ys[0].data(), &[0.0, 2.0]);
        assert_eq!(ys[1].data(), &[3.0, 0.0]);
        let gs = [Tensor::ones(&[2]), Tensor::ones(&[2])];
        let dxs = r.backward_input_batch(&gs).unwrap();
        assert_eq!(dxs[0].data(), &[0.0, 1.0]);
        assert_eq!(dxs[1].data(), &[1.0, 0.0]);
        // Mismatched batch size is rejected rather than silently zipped.
        assert!(r.backward_input_batch(&gs[..1]).is_err());
    }
}
