use crate::{Layer, Mode};
use remix_tensor::{Result, Tensor};

/// Flattens any input to rank 1 and restores the shape on the way back.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.in_shape = input.shape().to_vec();
        input.flatten()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out
            .reshape(&self.in_shape)
            .expect("flatten backward restores cached shape")
    }

    fn forward_batch(&mut self, inputs: &[Tensor], _mode: Mode) -> Result<Vec<Tensor>> {
        // All samples in a batch share a shape, so one cached shape suffices.
        if let Some(first) = inputs.first() {
            self.in_shape = first.shape().to_vec();
        }
        Ok(inputs.iter().map(Tensor::flatten).collect())
    }

    fn backward_input_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        grads_out
            .iter()
            .map(|g| g.reshape(&self.in_shape))
            .collect()
    }

    fn supports_batched_backward(&self) -> bool {
        true
    }

    fn backward_batch(&mut self, grads_out: &[Tensor]) -> Result<Vec<Tensor>> {
        // No parameters: reshaping is the whole training backward.
        self.backward_input_batch(grads_out)
    }

    fn supports_batched_train(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_shape() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4]);
        let y = f.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[24]);
        let dx = f.backward(&Tensor::ones(&[24]));
        assert_eq!(dx.shape(), &[2, 3, 4]);
    }
}
