use crate::{Layer, Mode};
use remix_tensor::Tensor;

/// Flattens any input to rank 1 and restores the shape on the way back.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.in_shape = input.shape().to_vec();
        input.flatten()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out
            .reshape(&self.in_shape)
            .expect("flatten backward restores cached shape")
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_shape() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4]);
        let y = f.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[24]);
        let dx = f.backward(&Tensor::ones(&[24]));
        assert_eq!(dx.shape(), &[2, 3, 4]);
    }
}
