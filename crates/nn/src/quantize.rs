//! Post-training weight quantization (paper Discussion, "Quantized models"):
//! shorter bit widths speed up ensemble inference and XAI, at some cost in
//! predictive capability. This module simulates `b`-bit quantization by
//! rounding every parameter to a per-tensor affine grid and dequantizing back
//! to `f32` (the standard "fake quantization" evaluation), so the accuracy
//! and explainability impact can be measured with the unmodified inference
//! path.

use crate::{Layer, Model};

/// Statistics of one quantization pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizationReport {
    /// Number of parameter tensors quantized.
    pub tensors: usize,
    /// Number of scalar parameters quantized.
    pub scalars: usize,
    /// Mean absolute rounding error introduced.
    pub mean_abs_error: f32,
}

/// Quantizes every parameter of `model` to `bits`-bit precision in place
/// (per-tensor symmetric affine grid), returning what changed.
///
/// # Panics
///
/// Panics unless `2 <= bits <= 16`.
pub fn quantize_weights(model: &mut Model, bits: u32) -> QuantizationReport {
    assert!((2..=16).contains(&bits), "bits must be in 2..=16");
    let levels = (1u32 << bits) - 1;
    let mut tensors = 0;
    let mut scalars = 0usize;
    let mut err_sum = 0.0f64;
    model.net_mut().visit_params(&mut |param, _| {
        tensors += 1;
        let lo = param.data().iter().copied().fold(f32::INFINITY, f32::min);
        let hi = param
            .data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        let range = (hi - lo).max(1e-12);
        let step = range / levels as f32;
        for v in param.data_mut() {
            let q = ((*v - lo) / step).round().clamp(0.0, levels as f32);
            let dequantized = lo + q * step;
            err_sum += (dequantized - *v).abs() as f64;
            *v = dequantized;
            scalars += 1;
        }
    });
    QuantizationReport {
        tensors,
        scalars,
        mean_abs_error: if scalars == 0 {
            0.0
        } else {
            (err_sum / scalars as f64) as f32
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten, Relu};
    use crate::{InputSpec, Sequential, Trainer, TrainerConfig};
    use rand::{rngs::StdRng, SeedableRng};
    use remix_tensor::Tensor;

    fn trained_model(seed: u64) -> (Model, Vec<Tensor>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Flatten::new());
        net.push(Dense::new(16, 12, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(12, 2, &mut rng));
        let mut model = Model::new(
            net,
            InputSpec {
                channels: 1,
                size: 4,
                num_classes: 2,
            },
        );
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let class = i % 2;
            let mut img = Tensor::randn(&[1, 4, 4], 0.1, &mut rng);
            img.set(&[0, 0, if class == 0 { 0 } else { 3 }], 1.0);
            images.push(img);
            labels.push(class);
        }
        Trainer::new(TrainerConfig {
            epochs: 12,
            ..TrainerConfig::default()
        })
        .fit(&mut model, &images, &labels);
        (model, images, labels)
    }

    fn accuracy(model: &mut Model, images: &[Tensor], labels: &[usize]) -> f32 {
        images
            .iter()
            .zip(labels)
            .filter(|(img, &l)| model.predict(img).0 == l)
            .count() as f32
            / labels.len() as f32
    }

    #[test]
    fn eight_bit_quantization_is_nearly_lossless() {
        let (mut model, images, labels) = trained_model(1);
        let before = accuracy(&mut model, &images, &labels);
        let report = quantize_weights(&mut model, 8);
        let after = accuracy(&mut model, &images, &labels);
        assert!(report.tensors > 0 && report.scalars > 0);
        assert!(report.mean_abs_error < 0.01);
        assert!(after >= before - 0.05, "8-bit: {before} -> {after}");
    }

    #[test]
    fn two_bit_quantization_hurts_more_than_eight_bit() {
        let (mut m8, images, labels) = trained_model(2);
        let (mut m2, _, _) = trained_model(2);
        let r8 = quantize_weights(&mut m8, 8);
        let r2 = quantize_weights(&mut m2, 2);
        assert!(r2.mean_abs_error > r8.mean_abs_error * 5.0);
        let a8 = accuracy(&mut m8, &images, &labels);
        let a2 = accuracy(&mut m2, &images, &labels);
        assert!(
            a8 + 1e-6 >= a2,
            "coarser grid should not help: {a8} vs {a2}"
        );
    }

    #[test]
    fn quantized_model_still_yields_input_gradients() {
        let (mut model, images, _) = trained_model(3);
        quantize_weights(&mut model, 6);
        let g = model.input_gradient(&images[0], 0);
        assert!(!g.has_non_finite());
        assert!(g.abs().sum() > 0.0);
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn rejects_one_bit() {
        let (mut model, _, _) = trained_model(4);
        quantize_weights(&mut model, 1);
    }
}
