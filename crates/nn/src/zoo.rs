//! The nine-architecture model zoo of Table III, scaled for CPU training.
//!
//! Each architecture keeps its *distinguishing structure* — the property the
//! paper's ensembles exploit for diversity — while width and depth are reduced
//! so a model trains in seconds on one core:
//!
//! * ConvNet / DeconvNet — plain conv stacks (+ dropout for DeconvNet);
//! * VGG11 / VGG16 — deep homogeneous 3×3 conv groups with max pooling and a
//!   fully-connected head;
//! * ResNet18 — basic residual blocks; ResNet50 — bottleneck residual blocks;
//! * MobileNet — depthwise-separable convolutions;
//! * EfficientNetV2-B0/B1 — Fused-MBConv early stages and MBConv (with
//!   squeeze-excitation) late stages.

use crate::layers::{
    AvgPool2d, Conv2d, Dense, DepthwiseConv2d, Dropout, Flatten, GlobalAvgPool, InstanceNorm2d,
    MaxPool2d, Relu, Residual, SqueezeExcite,
};
use crate::Sequential;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Input/output contract of a classifier: square `size`×`size` images with
/// `channels` channels, mapped to `num_classes` logits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputSpec {
    /// Image channels (1 = grayscale, 3 = RGB).
    pub channels: usize,
    /// Image side length in pixels. Must be divisible by 8 for the deeper
    /// zoo architectures.
    pub size: usize,
    /// Number of label classes.
    pub num_classes: usize,
}

/// The nine architectures of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// 3 conv + 3 FC with max pooling.
    ConvNet,
    /// 4 conv + 2 FC with 0.5 dropout.
    DeconvNet,
    /// Deep homogeneous conv groups (scaled VGG-11).
    Vgg11,
    /// Deeper homogeneous conv groups (scaled VGG-16).
    Vgg16,
    /// Basic-block residual network (scaled ResNet-18).
    ResNet18,
    /// Bottleneck-block residual network (scaled ResNet-50).
    ResNet50,
    /// Depthwise-separable conv network (scaled MobileNet).
    MobileNet,
    /// Fused-MBConv + MBConv network (scaled EfficientNetV2-B0).
    EfficientNetV2B0,
    /// Deeper Fused-MBConv + MBConv network (scaled EfficientNetV2-B1).
    EfficientNetV2B1,
}

impl Arch {
    /// All nine architectures in Table III order.
    pub const ALL: [Arch; 9] = [
        Arch::ConvNet,
        Arch::DeconvNet,
        Arch::Vgg11,
        Arch::Vgg16,
        Arch::ResNet18,
        Arch::ResNet50,
        Arch::MobileNet,
        Arch::EfficientNetV2B0,
        Arch::EfficientNetV2B1,
    ];

    /// Short display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Arch::ConvNet => "ConvNet",
            Arch::DeconvNet => "DeconvNet",
            Arch::Vgg11 => "VGG11",
            Arch::Vgg16 => "VGG16",
            Arch::ResNet18 => "ResNet18",
            Arch::ResNet50 => "ResNet50",
            Arch::MobileNet => "MobileNet",
            Arch::EfficientNetV2B0 => "EfficientNetv2B0",
            Arch::EfficientNetV2B1 => "EfficientNetv2B1",
        }
    }

    /// Default learning rate for this architecture: the plain conv stacks
    /// train stably only at lower rates, while the normalized deep nets need
    /// higher ones to converge within a few epochs.
    pub fn default_lr(&self) -> f32 {
        match self {
            Arch::ConvNet | Arch::DeconvNet | Arch::Vgg11 | Arch::Vgg16 => 0.01,
            _ => 0.04,
        }
    }

    /// One-line architecture summary (Table III column).
    pub fn summary(&self) -> &'static str {
        match self {
            Arch::ConvNet => "3 Conv + 3 FC + Max Pooling",
            Arch::DeconvNet => "4 Conv + 2 FC w/ 0.5 Dropout",
            Arch::Vgg11 => "6 Conv + 3 FC + Max Pooling (scaled VGG11)",
            Arch::Vgg16 => "9 Conv + 3 FC + Max Pooling (scaled VGG16)",
            Arch::ResNet18 => "Basic residual blocks + Avg Pooling",
            Arch::ResNet50 => "Bottleneck residual blocks + Avg Pooling",
            Arch::MobileNet => "Depthwise-separable Conv + Avg Pooling",
            Arch::EfficientNetV2B0 => "Fused-MBConv + MBConv(SE) + 1 FC",
            Arch::EfficientNetV2B1 => "Fused-MBConv + MBConv(SE) + 1 FC (deeper)",
        }
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

type Shape = (usize, usize, usize);

/// Appends Conv→BN→ReLU and returns the new activation shape.
fn conv_bn_relu(
    net: &mut Sequential,
    shape: Shape,
    filters: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    rng: &mut impl Rng,
) -> Shape {
    let conv = Conv2d::new(shape, filters, kernel, stride, pad, rng);
    let out = conv.out_shape();
    net.push(conv);
    net.push(InstanceNorm2d::new(out));
    net.push(Relu::new());
    out
}

/// Appends Conv→ReLU (no BN; used by the plain conv stacks).
fn conv_relu(
    net: &mut Sequential,
    shape: Shape,
    filters: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    rng: &mut impl Rng,
) -> Shape {
    let conv = Conv2d::new(shape, filters, kernel, stride, pad, rng);
    let out = conv.out_shape();
    net.push(conv);
    net.push(Relu::new());
    out
}

fn maxpool(net: &mut Sequential, shape: Shape) -> Shape {
    let pool = MaxPool2d::new(shape, 2);
    let out = pool.out_shape();
    net.push(pool);
    out
}

fn head(net: &mut Sequential, shape: Shape, num_classes: usize, rng: &mut impl Rng) {
    // Average-pool down to 2×2 instead of 1×1: after instance normalization a
    // global average is nearly information-free (channels are standardized),
    // so the head keeps a little spatial structure before the classifier.
    let mut s = shape;
    if s.1 >= 4 && s.1.is_multiple_of(2) {
        let pool = AvgPool2d::new(s, s.1 / 2);
        s = pool.out_shape();
        net.push(pool);
        net.push(Flatten::new());
        net.push(Dense::new(s.0 * s.1 * s.2, num_classes, rng));
    } else {
        net.push(GlobalAvgPool::new(s));
        net.push(Dense::new(s.0, num_classes, rng));
    }
}

fn convnet(spec: InputSpec, rng: &mut impl Rng) -> Sequential {
    let mut net = Sequential::new();
    let mut s = (spec.channels, spec.size, spec.size);
    s = conv_relu(&mut net, s, 8, 3, 1, 1, rng);
    s = maxpool(&mut net, s);
    s = conv_relu(&mut net, s, 16, 3, 1, 1, rng);
    s = maxpool(&mut net, s);
    s = conv_relu(&mut net, s, 16, 3, 1, 1, rng);
    net.push(Flatten::new());
    let flat = s.0 * s.1 * s.2;
    net.push(Dense::new(flat, 48, rng));
    net.push(Relu::new());
    net.push(Dense::new(48, 24, rng));
    net.push(Relu::new());
    net.push(Dense::new(24, spec.num_classes, rng));
    net
}

fn deconvnet(spec: InputSpec, rng: &mut impl Rng) -> Sequential {
    let mut net = Sequential::new();
    let mut s = (spec.channels, spec.size, spec.size);
    s = conv_relu(&mut net, s, 8, 3, 1, 1, rng);
    s = conv_relu(&mut net, s, 8, 3, 1, 1, rng);
    s = maxpool(&mut net, s);
    s = conv_relu(&mut net, s, 16, 3, 1, 1, rng);
    s = conv_relu(&mut net, s, 16, 3, 1, 1, rng);
    s = maxpool(&mut net, s);
    net.push(Flatten::new());
    net.push(Dropout::new(0.5, rng.gen()));
    let flat = s.0 * s.1 * s.2;
    net.push(Dense::new(flat, 32, rng));
    net.push(Relu::new());
    net.push(Dense::new(32, spec.num_classes, rng));
    net
}

fn vgg(spec: InputSpec, groups: &[&[usize]], rng: &mut impl Rng) -> Sequential {
    let mut net = Sequential::new();
    let mut s = (spec.channels, spec.size, spec.size);
    for (gi, group) in groups.iter().enumerate() {
        for &filters in *group {
            s = conv_relu(&mut net, s, filters, 3, 1, 1, rng);
        }
        // pool after every group while the resolution allows it
        if gi < 3 && s.1 >= 4 {
            s = maxpool(&mut net, s);
        }
    }
    net.push(Flatten::new());
    let flat = s.0 * s.1 * s.2;
    net.push(Dense::new(flat, 48, rng));
    net.push(Relu::new());
    net.push(Dense::new(48, 48, rng));
    net.push(Relu::new());
    net.push(Dense::new(48, spec.num_classes, rng));
    net
}

/// Basic residual block (two 3×3 convs) with ReLU after the addition.
fn basic_block(
    net: &mut Sequential,
    shape: Shape,
    filters: usize,
    stride: usize,
    rng: &mut impl Rng,
) -> Shape {
    let mut body = Sequential::new();
    let conv1 = Conv2d::new(shape, filters, 3, stride, 1, rng);
    let mid = conv1.out_shape();
    body.push(conv1);
    body.push(InstanceNorm2d::new(mid));
    body.push(Relu::new());
    let conv2 = Conv2d::new(mid, filters, 3, 1, 1, rng);
    let out = conv2.out_shape();
    body.push(conv2);
    body.push(InstanceNorm2d::new(out));
    if stride != 1 || shape.0 != filters {
        net.push(Residual::projected(body, shape, filters, stride, rng));
    } else {
        net.push(Residual::identity(body));
    }
    net.push(Relu::new());
    out
}

/// Bottleneck residual block (1×1 reduce, 3×3, 1×1 expand).
fn bottleneck_block(
    net: &mut Sequential,
    shape: Shape,
    mid: usize,
    out_ch: usize,
    stride: usize,
    rng: &mut impl Rng,
) -> Shape {
    let mut body = Sequential::new();
    let c1 = Conv2d::new(shape, mid, 1, 1, 0, rng);
    let s1 = c1.out_shape();
    body.push(c1);
    body.push(InstanceNorm2d::new(s1));
    body.push(Relu::new());
    let c2 = Conv2d::new(s1, mid, 3, stride, 1, rng);
    let s2 = c2.out_shape();
    body.push(c2);
    body.push(InstanceNorm2d::new(s2));
    body.push(Relu::new());
    let c3 = Conv2d::new(s2, out_ch, 1, 1, 0, rng);
    let s3 = c3.out_shape();
    body.push(c3);
    body.push(InstanceNorm2d::new(s3));
    if stride != 1 || shape.0 != out_ch {
        net.push(Residual::projected(body, shape, out_ch, stride, rng));
    } else {
        net.push(Residual::identity(body));
    }
    net.push(Relu::new());
    s3
}

fn resnet18(spec: InputSpec, rng: &mut impl Rng) -> Sequential {
    let mut net = Sequential::new();
    let mut s = (spec.channels, spec.size, spec.size);
    s = conv_bn_relu(&mut net, s, 8, 3, 1, 1, rng);
    s = basic_block(&mut net, s, 8, 1, rng);
    s = basic_block(&mut net, s, 8, 1, rng);
    s = basic_block(&mut net, s, 16, 2, rng);
    s = basic_block(&mut net, s, 16, 1, rng);
    s = basic_block(&mut net, s, 32, 2, rng);
    s = basic_block(&mut net, s, 32, 1, rng);
    let mut tail = Sequential::new();
    head(&mut tail, s, spec.num_classes, rng);
    net.push(tail);
    net
}

fn resnet50(spec: InputSpec, rng: &mut impl Rng) -> Sequential {
    let mut net = Sequential::new();
    let mut s = (spec.channels, spec.size, spec.size);
    s = conv_bn_relu(&mut net, s, 8, 3, 1, 1, rng);
    s = bottleneck_block(&mut net, s, 4, 16, 1, rng);
    s = bottleneck_block(&mut net, s, 4, 16, 1, rng);
    s = bottleneck_block(&mut net, s, 8, 32, 2, rng);
    s = bottleneck_block(&mut net, s, 8, 32, 1, rng);
    s = bottleneck_block(&mut net, s, 16, 64, 2, rng);
    s = bottleneck_block(&mut net, s, 16, 64, 1, rng);
    let mut tail = Sequential::new();
    head(&mut tail, s, spec.num_classes, rng);
    net.push(tail);
    net
}

/// Depthwise-separable block: DW 3×3 → BN → ReLU → PW 1×1 → BN → ReLU.
fn dw_separable(
    net: &mut Sequential,
    shape: Shape,
    out_ch: usize,
    stride: usize,
    rng: &mut impl Rng,
) -> Shape {
    let dw = DepthwiseConv2d::new(shape, 3, stride, 1, rng);
    let mid = dw.out_shape();
    net.push(dw);
    net.push(InstanceNorm2d::new(mid));
    net.push(Relu::new());
    conv_bn_relu(net, mid, out_ch, 1, 1, 0, rng)
}

fn mobilenet(spec: InputSpec, rng: &mut impl Rng) -> Sequential {
    let mut net = Sequential::new();
    let mut s = (spec.channels, spec.size, spec.size);
    s = conv_bn_relu(&mut net, s, 8, 3, 1, 1, rng);
    s = dw_separable(&mut net, s, 16, 1, rng);
    s = dw_separable(&mut net, s, 16, 2, rng);
    s = dw_separable(&mut net, s, 32, 1, rng);
    s = dw_separable(&mut net, s, 32, 2, rng);
    s = dw_separable(&mut net, s, 32, 1, rng);
    head(&mut net, s, spec.num_classes, rng);
    net
}

/// Fused-MBConv: expand 3×3 conv → BN → ReLU → project 1×1 conv → BN, with a
/// residual connection.
fn fused_mbconv(
    net: &mut Sequential,
    shape: Shape,
    out_ch: usize,
    expand: usize,
    stride: usize,
    rng: &mut impl Rng,
) -> Shape {
    let mut body = Sequential::new();
    let c1 = Conv2d::new(shape, shape.0 * expand, 3, stride, 1, rng);
    let mid = c1.out_shape();
    body.push(c1);
    body.push(InstanceNorm2d::new(mid));
    body.push(Relu::new());
    let c2 = Conv2d::new(mid, out_ch, 1, 1, 0, rng);
    let out = c2.out_shape();
    body.push(c2);
    body.push(InstanceNorm2d::new(out));
    if stride != 1 || shape.0 != out_ch {
        net.push(Residual::projected(body, shape, out_ch, stride, rng));
    } else {
        net.push(Residual::identity(body));
    }
    net.push(Relu::new());
    out
}

/// MBConv with squeeze-excitation: expand 1×1 → BN → ReLU → DW 3×3 → BN →
/// ReLU → SE → project 1×1 → BN, with a residual connection.
fn mbconv_se(
    net: &mut Sequential,
    shape: Shape,
    out_ch: usize,
    expand: usize,
    stride: usize,
    rng: &mut impl Rng,
) -> Shape {
    let mut body = Sequential::new();
    let c1 = Conv2d::new(shape, shape.0 * expand, 1, 1, 0, rng);
    let s1 = c1.out_shape();
    body.push(c1);
    body.push(InstanceNorm2d::new(s1));
    body.push(Relu::new());
    let dw = DepthwiseConv2d::new(s1, 3, stride, 1, rng);
    let s2 = dw.out_shape();
    body.push(dw);
    body.push(InstanceNorm2d::new(s2));
    body.push(Relu::new());
    body.push(SqueezeExcite::new(s2, 4, rng));
    let c2 = Conv2d::new(s2, out_ch, 1, 1, 0, rng);
    let out = c2.out_shape();
    body.push(c2);
    body.push(InstanceNorm2d::new(out));
    if stride != 1 || shape.0 != out_ch {
        net.push(Residual::projected(body, shape, out_ch, stride, rng));
    } else {
        net.push(Residual::identity(body));
    }
    net.push(Relu::new());
    out
}

fn efficientnet(spec: InputSpec, deeper: bool, rng: &mut impl Rng) -> Sequential {
    let mut net = Sequential::new();
    let mut s = (spec.channels, spec.size, spec.size);
    s = conv_bn_relu(&mut net, s, 8, 3, 1, 1, rng);
    s = fused_mbconv(&mut net, s, 8, 1, 1, rng);
    s = fused_mbconv(&mut net, s, 16, 2, 2, rng);
    if deeper {
        s = fused_mbconv(&mut net, s, 16, 2, 1, rng);
    }
    s = mbconv_se(&mut net, s, 16, 2, 1, rng);
    s = mbconv_se(&mut net, s, 32, 2, 2, rng);
    if deeper {
        s = mbconv_se(&mut net, s, 32, 2, 1, rng);
    }
    head(&mut net, s, spec.num_classes, rng);
    net
}

/// Builds a freshly-initialized network of the given architecture.
///
/// # Panics
///
/// Panics if `spec.size` is too small for the architecture's downsampling
/// chain (sizes divisible by 8 and ≥ 8 are always safe).
pub fn build(arch: Arch, spec: InputSpec, rng: &mut impl Rng) -> Sequential {
    match arch {
        Arch::ConvNet => convnet(spec, rng),
        Arch::DeconvNet => deconvnet(spec, rng),
        Arch::Vgg11 => vgg(spec, &[&[8], &[16], &[24, 24], &[32, 32]], rng),
        Arch::Vgg16 => vgg(spec, &[&[8, 8], &[16, 16], &[24, 24, 24], &[32, 32]], rng),
        Arch::ResNet18 => resnet18(spec, rng),
        Arch::ResNet50 => resnet50(spec, rng),
        Arch::MobileNet => mobilenet(spec, rng),
        Arch::EfficientNetV2B0 => efficientnet(spec, false, rng),
        Arch::EfficientNetV2B1 => efficientnet(spec, true, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, Mode};
    use rand::{rngs::StdRng, SeedableRng};
    use remix_tensor::Tensor;

    fn spec() -> InputSpec {
        InputSpec {
            channels: 1,
            size: 16,
            num_classes: 5,
        }
    }

    #[test]
    fn every_arch_builds_and_runs_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[1, 16, 16], 1.0, &mut rng);
        for arch in Arch::ALL {
            let mut net = build(arch, spec(), &mut rng);
            let y = net.forward(&x, Mode::Eval);
            assert_eq!(y.len(), 5, "{arch} output size");
            assert!(!y.has_non_finite(), "{arch} produced NaN/inf");
        }
    }

    #[test]
    fn every_arch_backpropagates_to_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(&[1, 16, 16], 1.0, &mut rng);
        for arch in Arch::ALL {
            let mut net = build(arch, spec(), &mut rng);
            net.forward(&x, Mode::Eval);
            let dx = net.backward(&Tensor::ones(&[5]));
            assert_eq!(dx.shape(), x.shape(), "{arch} input grad shape");
            assert!(dx.abs().sum() > 0.0, "{arch} zero input gradient");
        }
    }

    #[test]
    fn rgb_and_larger_inputs_work() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = InputSpec {
            channels: 3,
            size: 32,
            num_classes: 10,
        };
        let x = Tensor::randn(&[3, 32, 32], 1.0, &mut rng);
        for arch in [Arch::ConvNet, Arch::ResNet50, Arch::EfficientNetV2B1] {
            let mut net = build(arch, spec, &mut rng);
            assert_eq!(net.forward(&x, Mode::Eval).len(), 10, "{arch}");
        }
    }

    #[test]
    fn architectures_have_distinct_parameter_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        let counts: Vec<usize> = Arch::ALL
            .iter()
            .map(|&a| build(a, spec(), &mut rng).param_count())
            .collect();
        // all nonzero and not all identical
        assert!(counts.iter().all(|&c| c > 0));
        assert!(counts.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn b1_is_deeper_than_b0() {
        let mut rng = StdRng::seed_from_u64(5);
        let b0 = build(Arch::EfficientNetV2B0, spec(), &mut rng).param_count();
        let b1 = build(Arch::EfficientNetV2B1, spec(), &mut rng).param_count();
        assert!(b1 > b0);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Arch::Vgg11.name(), "VGG11");
        assert_eq!(Arch::EfficientNetV2B0.name(), "EfficientNetv2B0");
        assert_eq!(Arch::ALL.len(), 9);
    }
}
