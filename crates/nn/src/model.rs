use crate::{zoo::InputSpec, Layer, Mode, Sequential};
use remix_tensor::{Result, Tensor, TensorError};

/// A trained (or trainable) classifier: a [`Sequential`] network plus its
/// input/output contract.
///
/// `Model` is what ensembles, baselines, and XAI techniques consume. Methods
/// take `&mut self` because the forward pass caches backward state inside the
/// layers.
#[derive(Clone)]
pub struct Model {
    net: Sequential,
    spec: InputSpec,
    /// Human-readable architecture label (e.g. `"VGG11"`).
    pub name: String,
}

impl Model {
    /// Wraps a network with its input specification.
    pub fn new(net: Sequential, spec: InputSpec) -> Self {
        Self {
            net,
            spec,
            name: String::from("model"),
        }
    }

    /// Wraps a network with a descriptive name.
    pub fn named(net: Sequential, spec: InputSpec, name: impl Into<String>) -> Self {
        Self {
            net,
            spec,
            name: name.into(),
        }
    }

    /// The input specification this model was built for.
    pub fn spec(&self) -> InputSpec {
        self.spec
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.spec.num_classes
    }

    /// Number of trainable parameters.
    pub fn param_count(&mut self) -> usize {
        self.net.param_count()
    }

    /// Raw logits for one `[C, H, W]` image.
    ///
    /// Runs in [`Mode::Inference`]: bit-identical to an eval-mode forward,
    /// but skips the parameter-gradient caches the XAI hot path never reads.
    pub fn logits(&mut self, image: &Tensor) -> Tensor {
        self.net.forward(image, Mode::Inference)
    }

    /// Fallible [`Model::logits`]: surfaces geometry errors (wrong input
    /// shape) instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first layer validation error.
    pub fn try_logits(&mut self, image: &Tensor) -> Result<Tensor> {
        self.net.try_forward(image, Mode::Inference)
    }

    /// Softmax class probabilities for one image.
    pub fn predict_proba(&mut self, image: &Tensor) -> Tensor {
        self.logits(image).softmax()
    }

    /// Fallible [`Model::predict_proba`].
    ///
    /// # Errors
    ///
    /// Returns the first layer validation error.
    pub fn try_predict_proba(&mut self, image: &Tensor) -> Result<Tensor> {
        Ok(self.try_logits(image)?.softmax())
    }

    /// Raw logits for a batch of same-shape images.
    ///
    /// Convolutional layers evaluate the whole batch as a single matrix
    /// product; the results are bit-identical to calling [`Model::logits`]
    /// per image.
    ///
    /// # Errors
    ///
    /// Returns the first layer validation error.
    pub fn logits_batch(&mut self, images: &[Tensor]) -> Result<Vec<Tensor>> {
        self.net.forward_batch(images, Mode::Inference)
    }

    /// Softmax class probabilities for a batch of images (see
    /// [`Model::logits_batch`]).
    ///
    /// # Errors
    ///
    /// Returns the first layer validation error.
    pub fn predict_proba_batch(&mut self, images: &[Tensor]) -> Result<Vec<Tensor>> {
        Ok(self
            .logits_batch(images)?
            .iter()
            .map(Tensor::softmax)
            .collect())
    }

    /// Predicted class and its confidence (softmax probability).
    pub fn predict(&mut self, image: &Tensor) -> (usize, f32) {
        let probs = self.predict_proba(image);
        let class = probs.argmax().expect("non-empty probabilities");
        (class, probs.data()[class])
    }

    /// Gradient of the `class` logit with respect to the input image
    /// (`[C, H, W]`, same shape as the input).
    ///
    /// This is the primitive behind the gradient-based XAI techniques:
    /// SmoothGrad averages it over noisy inputs, Integrated Gradients
    /// accumulates it along a baseline path. It runs an inference-mode
    /// forward followed by an input-only backward, so no parameter gradients
    /// are accumulated (the values are bit-identical to the full backward's
    /// input gradient).
    pub fn input_gradient(&mut self, image: &Tensor, class: usize) -> Tensor {
        let logits = self.net.forward(image, Mode::Inference);
        let mut seed = Tensor::zeros(logits.shape());
        seed.data_mut()[class] = 1.0;
        self.net.backward_input(&seed)
    }

    /// Per-image input gradients for a batch: `classes[i]` selects the logit
    /// differentiated for `images[i]`.
    ///
    /// When every layer supports the batched backward contract the whole
    /// batch runs through one forward/backward sweep (convolutions as single
    /// large matmuls); otherwise it falls back to per-image
    /// [`Model::input_gradient`] calls. Both paths produce bit-identical
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `images` and `classes` lengths differ, or the
    /// first layer validation error.
    pub fn input_gradient_batch(
        &mut self,
        images: &[Tensor],
        classes: &[usize],
    ) -> Result<Vec<Tensor>> {
        if images.len() != classes.len() {
            return Err(TensorError::ShapeMismatch {
                left: vec![images.len()],
                right: vec![classes.len()],
                op: "input_gradient_batch",
            });
        }
        if self.net.supports_batched_backward() {
            let logits = self.net.forward_batch(images, Mode::Inference)?;
            let seeds: Vec<Tensor> = logits
                .iter()
                .zip(classes)
                .map(|(l, &c)| {
                    let mut seed = Tensor::zeros(l.shape());
                    seed.data_mut()[c] = 1.0;
                    seed
                })
                .collect();
            self.net.backward_input_batch(&seeds)
        } else {
            Ok(images
                .iter()
                .zip(classes)
                .map(|(img, &c)| self.input_gradient(img, c))
                .collect())
        }
    }

    /// Freezes the network for steady-state serving: every layer prepacks its
    /// weight-static GEMM operands ([`Layer::prepare_inference`]), so repeated
    /// predict / XAI-gradient sweeps skip the per-call weight pack. Outputs
    /// and input gradients stay bit-identical to the unfrozen model, and any
    /// later parameter mutation (training, state load) drops the packs
    /// automatically — refreeze after mutating to get the fast path back.
    pub fn freeze_for_inference(&mut self) {
        self.net.prepare_inference();
    }

    /// Mutable access to the underlying network (training, optimizers).
    pub fn net_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Layer names of the underlying network.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.net.layer_names()
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Model({}, spec={:?})", self.name, self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten};
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_model() -> Model {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Flatten::new());
        net.push(Dense::new(4, 3, &mut rng));
        Model::named(
            net,
            InputSpec {
                channels: 1,
                size: 2,
                num_classes: 3,
            },
            "tiny",
        )
    }

    #[test]
    fn predict_proba_is_simplex() {
        let mut m = tiny_model();
        let p = m.predict_proba(&Tensor::ones(&[1, 2, 2]));
        assert_eq!(p.len(), 3);
        assert!((p.sum() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn predict_returns_argmax_and_confidence() {
        let mut m = tiny_model();
        let (class, conf) = m.predict(&Tensor::ones(&[1, 2, 2]));
        let p = m.predict_proba(&Tensor::ones(&[1, 2, 2]));
        assert_eq!(class, p.argmax().unwrap());
        assert!((conf - p.max().unwrap()).abs() < 1e-6);
    }

    #[test]
    fn input_gradient_has_input_shape_and_signal() {
        let mut m = tiny_model();
        let g = m.input_gradient(&Tensor::ones(&[1, 2, 2]), 0);
        assert_eq!(g.shape(), &[1, 2, 2]);
        assert!(g.abs().sum() > 0.0);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut m = tiny_model();
        let x = Tensor::from_vec(vec![0.1, -0.4, 0.7, 0.2], &[1, 2, 2]).unwrap();
        let g = m.input_gradient(&x, 1);
        let base = m.logits(&x).data()[1];
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let num = (m.logits(&xp).data()[1] - base) / eps;
            assert!((num - g.data()[i]).abs() < 1e-2);
        }
    }
}
