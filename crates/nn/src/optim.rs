//! First-order optimizers operating through [`Layer::visit_params`].

use crate::Layer;
use remix_tensor::Tensor;

/// A stateful first-order optimizer.
pub trait Optimizer {
    /// Applies one update step to every parameter of `net` using the
    /// gradients accumulated since the last [`Layer::zero_grads`], scaled by
    /// `grad_scale` (typically `1/batch_size`).
    fn step(&mut self, net: &mut dyn Layer, grad_scale: f32);
}

/// Stochastic gradient descent with classical momentum and L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut dyn Layer, grad_scale: f32) {
        let mut idx = 0;
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        net.visit_params(&mut |param, grad| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(param.shape()));
            }
            let v = &mut velocity[idx];
            for ((p, &g), vel) in param
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(v.data_mut())
            {
                let step = g * grad_scale + wd * *p;
                *vel = mu * *vel + step;
                *p -= lr * *vel;
            }
            idx += 1;
        });
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut dyn Layer, grad_scale: f32) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut idx = 0;
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (ms, vs) = (&mut self.m, &mut self.v);
        net.visit_params(&mut |param, grad| {
            if ms.len() <= idx {
                ms.push(Tensor::zeros(param.shape()));
                vs.push(Tensor::zeros(param.shape()));
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            for (((p, &g), mi), vi) in param
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(m.data_mut())
                .zip(v.data_mut())
            {
                let gs = g * grad_scale;
                *mi = b1 * *mi + (1.0 - b1) * gs;
                *vi = b2 * *vi + (1.0 - b2) * gs * gs;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *p -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::{cross_entropy, Mode, Sequential};
    use rand::{rngs::StdRng, SeedableRng};
    use remix_tensor::Tensor;

    fn toy_problem(optimizer: &mut dyn Optimizer) -> f32 {
        // learn to map two separable points to their classes
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 8, &mut rng));
        net.push(crate::layers::Relu::new());
        net.push(Dense::new(8, 2, &mut rng));
        let data = [
            (Tensor::from_slice(&[1.0, 0.0]), 0usize),
            (Tensor::from_slice(&[0.0, 1.0]), 1usize),
        ];
        let mut last = f32::MAX;
        for _ in 0..100 {
            net.zero_grads();
            let mut total = 0.0;
            for (x, t) in &data {
                let logits = net.forward(x, Mode::Train);
                let (loss, grad) = cross_entropy(&logits, *t);
                total += loss;
                net.backward(&grad);
            }
            optimizer.step(&mut net, 0.5);
            last = total / 2.0;
        }
        last
    }

    #[test]
    fn sgd_reduces_loss_to_near_zero() {
        let mut opt = Sgd::new(0.5, 0.9, 0.0);
        assert!(toy_problem(&mut opt) < 0.05);
    }

    #[test]
    fn adam_reduces_loss_to_near_zero() {
        let mut opt = Adam::new(0.05);
        assert!(toy_problem(&mut opt) < 0.05);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 4, &mut rng));
        let mut norm_before = 0.0;
        net.visit_params(&mut |p, _| norm_before += p.norm());
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        net.zero_grads();
        opt.step(&mut net, 1.0);
        let mut norm_after = 0.0;
        net.visit_params(&mut |p, _| norm_after += p.norm());
        assert!(norm_after < norm_before);
    }
}
