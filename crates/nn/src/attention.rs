//! A miniature single-head self-attention classifier used by the paper's
//! Fig. 12 discussion: applying ReMIX to Vision Transformers by reading the
//! attention scores directly instead of running a post-hoc XAI step.
//!
//! [`MiniVit`] splits the image into patches, embeds them linearly, runs one
//! self-attention layer, mean-pools the attended tokens and classifies. The
//! most recent attention matrix is exposed through [`MiniVit::attention_map`]
//! as a spatial saliency proxy (column-wise attention received per patch,
//! upsampled to the image grid).

use crate::{Layer, Mode};
use rand::Rng;
use remix_tensor::Tensor;

/// Single-head self-attention patch classifier.
#[derive(Clone)]
pub struct MiniVit {
    patch: usize,
    grid: usize,
    channels: usize,
    size: usize,
    embed_dim: usize,
    num_classes: usize,
    // parameters (all [out, in] matrices) and their gradients
    w_embed: Tensor,
    w_q: Tensor,
    w_k: Tensor,
    w_v: Tensor,
    w_cls: Tensor,
    b_cls: Tensor,
    pos_embed: Tensor,
    g_embed: Tensor,
    g_q: Tensor,
    g_k: Tensor,
    g_v: Tensor,
    g_cls: Tensor,
    g_bcls: Tensor,
    g_pos: Tensor,
    // forward caches
    cache_patches: Tensor, // [T, P]
    cache_tokens: Tensor,  // [T, E]
    cache_q: Tensor,
    cache_k: Tensor,
    cache_v: Tensor,
    cache_attn: Tensor, // [T, T]
    cache_pooled: Tensor,
}

impl MiniVit {
    /// Creates a MiniViT over `size`×`size` images with `channels` channels,
    /// square `patch` size, `embed_dim` token width and `num_classes` output.
    ///
    /// # Panics
    ///
    /// Panics unless `patch` divides `size`.
    pub fn new(
        channels: usize,
        size: usize,
        patch: usize,
        embed_dim: usize,
        num_classes: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            patch > 0 && size.is_multiple_of(patch),
            "patch must divide image size"
        );
        let grid = size / patch;
        let patch_len = channels * patch * patch;
        let std_e = (2.0 / patch_len as f32).sqrt();
        let std_a = (1.0 / embed_dim as f32).sqrt();
        Self {
            patch,
            grid,
            channels,
            size,
            embed_dim,
            num_classes,
            w_embed: Tensor::randn(&[embed_dim, patch_len], std_e, rng),
            w_q: Tensor::randn(&[embed_dim, embed_dim], std_a, rng),
            w_k: Tensor::randn(&[embed_dim, embed_dim], std_a, rng),
            w_v: Tensor::randn(&[embed_dim, embed_dim], std_a, rng),
            w_cls: Tensor::randn(&[num_classes, embed_dim], std_a, rng),
            b_cls: Tensor::zeros(&[num_classes]),
            pos_embed: Tensor::randn(&[grid * grid, embed_dim], 0.1, rng),
            g_embed: Tensor::zeros(&[embed_dim, patch_len]),
            g_q: Tensor::zeros(&[embed_dim, embed_dim]),
            g_k: Tensor::zeros(&[embed_dim, embed_dim]),
            g_v: Tensor::zeros(&[embed_dim, embed_dim]),
            g_cls: Tensor::zeros(&[num_classes, embed_dim]),
            g_bcls: Tensor::zeros(&[num_classes]),
            g_pos: Tensor::zeros(&[grid * grid, embed_dim]),
            cache_patches: Tensor::default(),
            cache_tokens: Tensor::default(),
            cache_q: Tensor::default(),
            cache_k: Tensor::default(),
            cache_v: Tensor::default(),
            cache_attn: Tensor::default(),
            cache_pooled: Tensor::default(),
        }
    }

    /// Number of tokens (grid²).
    pub fn num_tokens(&self) -> usize {
        self.grid * self.grid
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The most recent `[T, T]` attention matrix (rows = queries).
    ///
    /// Returns an empty tensor before the first forward pass.
    pub fn attention_scores(&self) -> &Tensor {
        &self.cache_attn
    }

    /// Spatial saliency proxy from the last forward pass: total attention
    /// *received* by each patch, upsampled to an `[H, W]` matrix — the
    /// "attention scores as feature space" of the paper's Fig. 12 workflow.
    pub fn attention_map(&self) -> Tensor {
        let t = self.num_tokens();
        if self.cache_attn.len() != t * t {
            return Tensor::zeros(&[self.size, self.size]);
        }
        // column sums = attention received per key token
        let mut received = vec![0.0f32; t];
        for q in 0..t {
            for (k, r) in received.iter_mut().enumerate() {
                *r += self.cache_attn.data()[q * t + k];
            }
        }
        let mut map = Tensor::zeros(&[self.size, self.size]);
        let buf = map.data_mut();
        for ty in 0..self.grid {
            for tx in 0..self.grid {
                let v = received[ty * self.grid + tx] / t as f32;
                for py in 0..self.patch {
                    for px in 0..self.patch {
                        buf[(ty * self.patch + py) * self.size + tx * self.patch + px] = v;
                    }
                }
            }
        }
        map
    }

    fn extract_patches(&self, image: &Tensor) -> Tensor {
        let t = self.num_tokens();
        let plen = self.channels * self.patch * self.patch;
        let mut out = Tensor::zeros(&[t, plen]);
        let buf = out.data_mut();
        for ty in 0..self.grid {
            for tx in 0..self.grid {
                let tok = ty * self.grid + tx;
                let mut i = 0;
                for c in 0..self.channels {
                    for py in 0..self.patch {
                        for px in 0..self.patch {
                            buf[tok * plen + i] =
                                image.at(&[c, ty * self.patch + py, tx * self.patch + px]);
                            i += 1;
                        }
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for MiniVit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MiniVit(patch={}, tokens={}, embed={})",
            self.patch,
            self.num_tokens(),
            self.embed_dim
        )
    }
}

impl Layer for MiniVit {
    fn clone_boxed(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        debug_assert_eq!(input.shape(), [self.channels, self.size, self.size]);
        let patches = self.extract_patches(input); // [T, P]

        // All projections run as fused `A · Bᵀ` products reading the [out, in]
        // weights in place — no transposed copies are materialized, and each
        // product is bit-identical to the explicit-transpose route (pinned by
        // fused_attention_matmuls_match_explicit_transposes_bitwise).
        let mut tokens = patches.matmul_a_bt(&self.w_embed).expect("embed"); // [T, E]
        tokens
            .add_assign(&self.pos_embed)
            .expect("positional embedding shape");
        let q = tokens.matmul_a_bt(&self.w_q).expect("q");
        let k = tokens.matmul_a_bt(&self.w_k).expect("k");
        let v = tokens.matmul_a_bt(&self.w_v).expect("v");
        let scale = 1.0 / (self.embed_dim as f32).sqrt();
        let scores = q.matmul_a_bt(&k).expect("qk").scale(scale);
        let attn = scores.softmax(); // row-wise softmax [T, T]
        let attended = attn.matmul(&v).expect("av"); // [T, E]
                                                     // mean-pool tokens
        let t = self.num_tokens() as f32;
        let mut pooled = vec![0.0f32; self.embed_dim];
        for tok in 0..self.num_tokens() {
            for (e, p) in pooled.iter_mut().enumerate() {
                *p += attended.data()[tok * self.embed_dim + e] / t;
            }
        }
        let pooled = Tensor::from_slice(&pooled);
        let mut logits = self.w_cls.matvec(&pooled).expect("cls");
        logits.add_assign(&self.b_cls).expect("bias");
        self.cache_patches = patches;
        self.cache_tokens = tokens;
        self.cache_q = q;
        self.cache_k = k;
        self.cache_v = v;
        self.cache_attn = attn;
        self.cache_pooled = pooled;
        logits
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let t = self.num_tokens();
        let e = self.embed_dim;
        let scale = 1.0 / (e as f32).sqrt();
        // classifier head
        for (i, &g) in grad_out.data().iter().enumerate() {
            self.g_bcls.data_mut()[i] += g;
            for j in 0..e {
                self.g_cls.data_mut()[i * e + j] += g * self.cache_pooled.data()[j];
            }
        }
        let d_pooled = self
            .w_cls
            .transpose()
            .expect("rank 2")
            .matvec(grad_out)
            .expect("d_pooled"); // [E]
                                 // mean-pool backward: every token gets d_pooled / T
        let mut d_attended = Tensor::zeros(&[t, e]);
        {
            let buf = d_attended.data_mut();
            for tok in 0..t {
                for j in 0..e {
                    buf[tok * e + j] = d_pooled.data()[j] / t as f32;
                }
            }
        }
        // attended = attn · V; both products read their transposed operand in
        // place (fused A·Bᵀ / Aᵀ·B, bit-identical to the transpose-copy route)
        let d_attn = d_attended.matmul_a_bt(&self.cache_v).expect("d_attn"); // [T, T]
        let d_v = self.cache_attn.matmul_at_b(&d_attended).expect("d_v"); // [T, E]

        // softmax backward per row
        let mut d_scores = Tensor::zeros(&[t, t]);
        {
            let a = self.cache_attn.data();
            let da = d_attn.data();
            let buf = d_scores.data_mut();
            for r in 0..t {
                let dot: f32 = (0..t).map(|c| da[r * t + c] * a[r * t + c]).sum();
                for c in 0..t {
                    buf[r * t + c] = a[r * t + c] * (da[r * t + c] - dot) * scale;
                }
            }
        }
        // scores = Q Kᵀ
        let d_q = d_scores.matmul(&self.cache_k).expect("d_q"); // [T, E]
        let d_k = d_scores.matmul_at_b(&self.cache_q).expect("d_k"); // [T, E]
                                                                     // Q = tokens · Wqᵀ etc.: dWq = d_qᵀ · tokens, d_tokens += d_q · Wq
        let tokens = &self.cache_tokens;
        let acc = |grad: &mut Tensor, d: &Tensor| {
            let dw = d.matmul_at_b(tokens).expect("dW");
            grad.add_assign(&dw).expect("dW shape");
        };
        acc(&mut self.g_q, &d_q);
        acc(&mut self.g_k, &d_k);
        acc(&mut self.g_v, &d_v);
        let mut d_tokens = d_q.matmul(&self.w_q).expect("d_tokens q");
        d_tokens
            .add_assign(&d_k.matmul(&self.w_k).expect("d_tokens k"))
            .expect("shape");
        d_tokens
            .add_assign(&d_v.matmul(&self.w_v).expect("d_tokens v"))
            .expect("shape");
        // tokens = patches · Weᵀ + pos_embed
        self.g_pos.add_assign(&d_tokens).expect("pos grad shape");
        let dwe = d_tokens.matmul_at_b(&self.cache_patches).expect("dWe");
        self.g_embed.add_assign(&dwe).expect("dWe shape");
        let d_patches = d_tokens.matmul(&self.w_embed).expect("d_patches"); // [T, P]

        // scatter patch gradients back to the image
        let mut dx = Tensor::zeros(&[self.channels, self.size, self.size]);
        let plen = self.channels * self.patch * self.patch;
        for ty in 0..self.grid {
            for tx in 0..self.grid {
                let tok = ty * self.grid + tx;
                let mut i = 0;
                for c in 0..self.channels {
                    for py in 0..self.patch {
                        for px in 0..self.patch {
                            dx.set(
                                &[c, ty * self.patch + py, tx * self.patch + px],
                                d_patches.data()[tok * plen + i],
                            );
                            i += 1;
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, visit: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visit(&mut self.w_embed, &mut self.g_embed);
        visit(&mut self.w_q, &mut self.g_q);
        visit(&mut self.w_k, &mut self.g_k);
        visit(&mut self.w_v, &mut self.g_v);
        visit(&mut self.w_cls, &mut self.g_cls);
        visit(&mut self.b_cls, &mut self.g_bcls);
        visit(&mut self.pos_embed, &mut self.g_pos);
    }

    fn name(&self) -> &'static str {
        "MiniVit"
    }

    fn param_count(&self) -> usize {
        self.w_embed.len()
            + self.w_q.len()
            + self.w_k.len()
            + self.w_v.len()
            + self.w_cls.len()
            + self.b_cls.len()
            + self.pos_embed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_produces_logits_and_attention() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut vit = MiniVit::new(1, 8, 4, 8, 3, &mut rng);
        let x = Tensor::randn(&[1, 8, 8], 1.0, &mut rng);
        let y = vit.forward(&x, Mode::Eval);
        assert_eq!(y.len(), 3);
        assert_eq!(vit.attention_scores().shape(), &[4, 4]);
        // attention rows are probability distributions
        for r in 0..4 {
            let row_sum: f32 = (0..4).map(|c| vit.attention_scores().at(&[r, c])).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn attention_map_covers_the_image() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut vit = MiniVit::new(1, 8, 4, 8, 2, &mut rng);
        vit.forward(&Tensor::randn(&[1, 8, 8], 1.0, &mut rng), Mode::Eval);
        let map = vit.attention_map();
        assert_eq!(map.shape(), &[8, 8]);
        assert!(map.sum() > 0.0);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut vit = MiniVit::new(1, 8, 4, 6, 2, &mut rng);
        let x = Tensor::randn(&[1, 8, 8], 1.0, &mut rng);
        let y = vit.forward(&x, Mode::Train);
        let dx = vit.backward(&Tensor::ones(&[2]));
        let eps = 1e-2;
        for &i in &[0usize, 17, 40, 63] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = vit.forward(&xp, Mode::Train);
            let num = (yp.sum() - y.sum()) / eps;
            assert!(
                (num - dx.data()[i]).abs() < 5e-2,
                "grad at {i}: fd={num} vs {}",
                dx.data()[i]
            );
        }
    }

    /// The pre-fusion forward pass: every transposed operand is materialized
    /// with `.transpose()` before a plain `matmul`, exactly as the layer was
    /// originally written. Kept as the reference the fused implementation is
    /// pinned against.
    fn explicit_transpose_forward(vit: &mut MiniVit, input: &Tensor) -> Tensor {
        let patches = vit.extract_patches(input);
        let we_t = vit.w_embed.transpose().expect("rank 2");
        let mut tokens = patches.matmul(&we_t).expect("embed");
        tokens.add_assign(&vit.pos_embed).expect("pos shape");
        let q = tokens
            .matmul(&vit.w_q.transpose().expect("rank 2"))
            .expect("q");
        let k = tokens
            .matmul(&vit.w_k.transpose().expect("rank 2"))
            .expect("k");
        let v = tokens
            .matmul(&vit.w_v.transpose().expect("rank 2"))
            .expect("v");
        let scale = 1.0 / (vit.embed_dim as f32).sqrt();
        let scores = q
            .matmul(&k.transpose().expect("rank 2"))
            .expect("qk")
            .scale(scale);
        let attn = scores.softmax();
        let attended = attn.matmul(&v).expect("av");
        let t = vit.num_tokens() as f32;
        let mut pooled = vec![0.0f32; vit.embed_dim];
        for tok in 0..vit.num_tokens() {
            for (e, p) in pooled.iter_mut().enumerate() {
                *p += attended.data()[tok * vit.embed_dim + e] / t;
            }
        }
        let pooled = Tensor::from_slice(&pooled);
        let mut logits = vit.w_cls.matvec(&pooled).expect("cls");
        logits.add_assign(&vit.b_cls).expect("bias");
        vit.cache_patches = patches;
        vit.cache_tokens = tokens;
        vit.cache_q = q;
        vit.cache_k = k;
        vit.cache_v = v;
        vit.cache_attn = attn;
        vit.cache_pooled = pooled;
        logits
    }

    /// The pre-fusion backward pass (explicit transposes), matching
    /// [`explicit_transpose_forward`].
    fn explicit_transpose_backward(vit: &mut MiniVit, grad_out: &Tensor) -> Tensor {
        let t = vit.num_tokens();
        let e = vit.embed_dim;
        let scale = 1.0 / (e as f32).sqrt();
        for (i, &g) in grad_out.data().iter().enumerate() {
            vit.g_bcls.data_mut()[i] += g;
            for j in 0..e {
                vit.g_cls.data_mut()[i * e + j] += g * vit.cache_pooled.data()[j];
            }
        }
        let d_pooled = vit
            .w_cls
            .transpose()
            .expect("rank 2")
            .matvec(grad_out)
            .expect("d_pooled");
        let mut d_attended = Tensor::zeros(&[t, e]);
        {
            let buf = d_attended.data_mut();
            for tok in 0..t {
                for j in 0..e {
                    buf[tok * e + j] = d_pooled.data()[j] / t as f32;
                }
            }
        }
        let d_attn = d_attended
            .matmul(&vit.cache_v.transpose().expect("rank 2"))
            .expect("d_attn");
        let d_v = vit
            .cache_attn
            .transpose()
            .expect("rank 2")
            .matmul(&d_attended)
            .expect("d_v");
        let mut d_scores = Tensor::zeros(&[t, t]);
        {
            let a = vit.cache_attn.data();
            let da = d_attn.data();
            let buf = d_scores.data_mut();
            for r in 0..t {
                let dot: f32 = (0..t).map(|c| da[r * t + c] * a[r * t + c]).sum();
                for c in 0..t {
                    buf[r * t + c] = a[r * t + c] * (da[r * t + c] - dot) * scale;
                }
            }
        }
        let d_q = d_scores.matmul(&vit.cache_k).expect("d_q");
        let d_k = d_scores
            .transpose()
            .expect("rank 2")
            .matmul(&vit.cache_q)
            .expect("d_k");
        let tokens = &vit.cache_tokens;
        let dwq = d_q.transpose().expect("rank 2").matmul(tokens).expect("dW");
        vit.g_q.add_assign(&dwq).expect("dW shape");
        let dwk = d_k.transpose().expect("rank 2").matmul(tokens).expect("dW");
        vit.g_k.add_assign(&dwk).expect("dW shape");
        let dwv = d_v.transpose().expect("rank 2").matmul(tokens).expect("dW");
        vit.g_v.add_assign(&dwv).expect("dW shape");
        let mut d_tokens = d_q.matmul(&vit.w_q).expect("d_tokens q");
        d_tokens
            .add_assign(&d_k.matmul(&vit.w_k).expect("d_tokens k"))
            .expect("shape");
        d_tokens
            .add_assign(&d_v.matmul(&vit.w_v).expect("d_tokens v"))
            .expect("shape");
        vit.g_pos.add_assign(&d_tokens).expect("pos grad shape");
        let dwe = d_tokens
            .transpose()
            .expect("rank 2")
            .matmul(&vit.cache_patches)
            .expect("dWe");
        vit.g_embed.add_assign(&dwe).expect("dWe shape");
        let d_patches = d_tokens.matmul(&vit.w_embed).expect("d_patches");
        let mut dx = Tensor::zeros(&[vit.channels, vit.size, vit.size]);
        let plen = vit.channels * vit.patch * vit.patch;
        for ty in 0..vit.grid {
            for tx in 0..vit.grid {
                let tok = ty * vit.grid + tx;
                let mut i = 0;
                for c in 0..vit.channels {
                    for py in 0..vit.patch {
                        for px in 0..vit.patch {
                            dx.set(
                                &[c, ty * vit.patch + py, tx * vit.patch + px],
                                d_patches.data()[tok * plen + i],
                            );
                            i += 1;
                        }
                    }
                }
            }
        }
        dx
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn fused_attention_matmuls_match_explicit_transposes_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut fused = MiniVit::new(2, 12, 4, 10, 5, &mut rng);
        let mut reference = fused.clone();
        let x = Tensor::randn(&[2, 12, 12], 1.0, &mut rng);
        let g = Tensor::randn(&[5], 1.0, &mut rng);

        let y_fused = fused.forward(&x, Mode::Train);
        let y_ref = explicit_transpose_forward(&mut reference, &x);
        assert_eq!(bits(&y_fused), bits(&y_ref), "logits");
        assert_eq!(
            bits(&fused.cache_attn),
            bits(&reference.cache_attn),
            "attention"
        );

        let dx_fused = fused.backward(&g);
        let dx_ref = explicit_transpose_backward(&mut reference, &g);
        assert_eq!(bits(&dx_fused), bits(&dx_ref), "input gradient");
        let mut grads_fused = Vec::new();
        fused.visit_params(&mut |_, grad| grads_fused.extend(bits(grad)));
        let mut grads_ref = Vec::new();
        reference.visit_params(&mut |_, grad| grads_ref.extend(bits(grad)));
        assert_eq!(grads_fused, grads_ref, "parameter gradients");
    }

    #[test]
    fn minivit_is_trainable() {
        use crate::{InputSpec, Model, Sequential, Trainer, TrainerConfig};
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Sequential::new();
        net.push(MiniVit::new(1, 8, 4, 8, 2, &mut rng));
        let mut model = Model::new(
            net,
            InputSpec {
                channels: 1,
                size: 8,
                num_classes: 2,
            },
        );
        // class 0: bright left half; class 1: bright right half
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let class = i % 2;
            let mut img = Tensor::randn(&[1, 8, 8], 0.1, &mut rng);
            for y in 0..8 {
                for x in 0..4 {
                    img.set(&[0, y, if class == 0 { x } else { x + 4 }], 1.0);
                }
            }
            images.push(img);
            labels.push(class);
        }
        Trainer::new(TrainerConfig {
            epochs: 20,
            lr: 0.1,
            ..TrainerConfig::default()
        })
        .fit(&mut model, &images, &labels);
        let correct = images
            .iter()
            .zip(&labels)
            .filter(|(img, &l)| model.predict(img).0 == l)
            .count();
        assert!(correct >= 32, "MiniViT accuracy {correct}/40");
    }
}
