//! From-scratch trainable neural-network stack for the ReMIX reproduction.
//!
//! The paper trains nine TensorFlow architectures (Table III). This crate
//! provides the equivalent substrate in pure Rust:
//!
//! * a [`Layer`] trait whose backward pass propagates gradients **to the
//!   input** as well as to the weights — the property the gradient-based XAI
//!   techniques (Integrated Gradients, SmoothGrad) in `remix-xai` rely on;
//! * the layer set needed by the zoo: dense, convolution (lowered to GEMM via im2row),
//!   depthwise convolution, max/average/global pooling, batch-norm
//!   (running-statistics variant), dropout, residual blocks with optional
//!   projection shortcuts, and squeeze-and-excitation;
//! * [`Sequential`] composition, softmax cross-entropy loss, SGD (momentum)
//!   and Adam optimizers, and a mini-batch [`Trainer`] with per-sample weights
//!   (needed by AdaBoost in `remix-ensemble`);
//! * a model [`zoo`] with scaled-down but structurally faithful versions of
//!   ConvNet, DeconvNet, VGG11, VGG16, ResNet18, ResNet50, MobileNet and
//!   EfficientNetV2-B0/B1;
//! * a tiny self-attention pooling head ([`attention`]) used by the Fig. 12
//!   ViT discussion demo.
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use remix_nn::{zoo, Arch, InputSpec, Model};
//! use remix_tensor::Tensor;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let spec = InputSpec { channels: 1, size: 12, num_classes: 3 };
//! let mut model = Model::new(zoo::build(Arch::ConvNet, spec, &mut rng), spec);
//! let image = Tensor::zeros(&[1, 12, 12]);
//! let probs = model.predict_proba(&image);
//! assert_eq!(probs.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod attention;
mod layer;
pub mod layers;
mod loss;
mod model;
mod optim;
pub mod quantize;
mod sequential;
pub mod state;
mod trainer;
pub mod zoo;

pub use layer::{Layer, Mode};
pub use loss::cross_entropy;
pub use model::Model;
pub use optim::{Adam, Optimizer, Sgd};
pub use sequential::Sequential;
pub use trainer::{OptimizerKind, Trainer, TrainerConfig};
pub use zoo::{Arch, InputSpec};
