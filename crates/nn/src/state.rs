//! Model state persistence: a `state_dict`-style export of all trainable
//! parameters, so trained zoo members can be saved once and reloaded across
//! experiment runs instead of retrained.
//!
//! The state carries shape metadata and a structural fingerprint, so loading
//! into a mismatched architecture fails loudly instead of silently
//! scrambling weights.
//!
//! # Example
//!
//! Save a model's parameters and restore them into a freshly (differently)
//! initialized model of the same architecture — predictions round-trip
//! bit-exactly:
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use remix_nn::layers::{Dense, Flatten};
//! use remix_nn::state::{load_state, save_state};
//! use remix_nn::{InputSpec, Model, Sequential};
//! use remix_tensor::Tensor;
//!
//! let spec = InputSpec { channels: 1, size: 4, num_classes: 3 };
//! let build = |seed: u64| {
//!     let mut rng = StdRng::seed_from_u64(seed);
//!     let mut net = Sequential::new();
//!     net.push(Flatten::new());
//!     net.push(Dense::new(16, 3, &mut rng));
//!     Model::named(net, spec, "tiny")
//! };
//!
//! let mut trained = build(1);
//! let input = Tensor::rand_uniform(&[1, 4, 4], 0.0, 1.0, &mut StdRng::seed_from_u64(2));
//! let before = trained.predict_proba(&input);
//!
//! let state = save_state(&mut trained);
//! let mut restored = build(99); // different init, same architecture
//! assert_ne!(restored.predict_proba(&input), before);
//! load_state(&mut restored, &state).expect("same architecture");
//! assert_eq!(restored.predict_proba(&input), before);
//! ```

use crate::{Layer, Model};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A serializable snapshot of a model's trainable parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelState {
    /// Model display name at save time.
    pub name: String,
    /// Per-tensor shapes, in `visit_params` order (the structural
    /// fingerprint).
    pub shapes: Vec<Vec<usize>>,
    /// Parameter payloads, aligned with `shapes`.
    pub tensors: Vec<Vec<f32>>,
}

/// Error loading a [`ModelState`] into a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadStateError {
    /// The state has a different number of parameter tensors.
    TensorCountMismatch {
        /// Tensors in the state.
        state: usize,
        /// Tensors in the model.
        model: usize,
    },
    /// A tensor's shape disagrees.
    ShapeMismatch {
        /// Index in `visit_params` order.
        index: usize,
        /// Shape in the state.
        state: Vec<usize>,
        /// Shape in the model.
        model: Vec<usize>,
    },
    /// A tensor's payload length disagrees with its declared shape — the
    /// state is internally corrupt (e.g. truncated or bit-flipped in
    /// transit), so loading it would scramble weights.
    LengthMismatch {
        /// Index in `visit_params` order.
        index: usize,
        /// Elements the declared shape implies.
        expected: usize,
        /// Elements actually present in the payload.
        actual: usize,
    },
}

impl fmt::Display for LoadStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadStateError::TensorCountMismatch { state, model } => write!(
                f,
                "state has {state} parameter tensors but the model has {model}"
            ),
            LoadStateError::ShapeMismatch {
                index,
                state,
                model,
            } => write!(
                f,
                "parameter {index} shape mismatch: state {state:?} vs model {model:?}"
            ),
            LoadStateError::LengthMismatch {
                index,
                expected,
                actual,
            } => write!(
                f,
                "parameter {index} payload has {actual} elements but its shape implies {expected}"
            ),
        }
    }
}

impl std::error::Error for LoadStateError {}

/// Captures the model's parameters.
pub fn save_state(model: &mut Model) -> ModelState {
    let mut shapes = Vec::new();
    let mut tensors = Vec::new();
    model.net_mut().visit_params(&mut |param, _| {
        shapes.push(param.shape().to_vec());
        tensors.push(param.data().to_vec());
    });
    ModelState {
        name: model.name.clone(),
        shapes,
        tensors,
    }
}

/// Restores parameters captured by [`save_state`] into a structurally
/// identical model (same architecture and spec; initialization may differ).
///
/// # Errors
///
/// Returns [`LoadStateError`] if tensor counts or shapes disagree; the model
/// is left unmodified in that case.
pub fn load_state(model: &mut Model, state: &ModelState) -> Result<(), LoadStateError> {
    // validation pass first so failures leave the model untouched
    let mut shapes = Vec::new();
    model.net_mut().visit_params(&mut |param, _| {
        shapes.push(param.shape().to_vec());
    });
    if shapes.len() != state.shapes.len() || state.tensors.len() != state.shapes.len() {
        return Err(LoadStateError::TensorCountMismatch {
            state: state.shapes.len().min(state.tensors.len()),
            model: shapes.len(),
        });
    }
    for (i, (model_shape, state_shape)) in shapes.iter().zip(&state.shapes).enumerate() {
        if model_shape != state_shape {
            return Err(LoadStateError::ShapeMismatch {
                index: i,
                state: state_shape.clone(),
                model: model_shape.clone(),
            });
        }
        // Never trust shape metadata alone: a payload that disagrees with
        // its own shape would panic in copy_from_slice below, or worse,
        // silently load garbage if shapes were not checked element-wise.
        let expected: usize = state_shape.iter().product();
        let actual = state.tensors[i].len();
        if actual != expected {
            return Err(LoadStateError::LengthMismatch {
                index: i,
                expected,
                actual,
            });
        }
    }
    let mut idx = 0;
    model.net_mut().visit_params(&mut |param, _| {
        param.data_mut().copy_from_slice(&state.tensors[idx]);
        idx += 1;
    });
    model.name = state.name.clone();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{zoo, Arch, InputSpec};
    use rand::{rngs::StdRng, SeedableRng};
    use remix_tensor::Tensor;

    fn spec() -> InputSpec {
        InputSpec {
            channels: 1,
            size: 16,
            num_classes: 4,
        }
    }

    #[test]
    fn save_load_roundtrips_predictions() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut original = Model::named(zoo::build(Arch::ConvNet, spec(), &mut rng), spec(), "a");
        let img = Tensor::rand_uniform(&[1, 16, 16], 0.0, 1.0, &mut rng);
        let before = original.predict_proba(&img);
        let state = save_state(&mut original);
        // fresh model with different random init
        let mut restored = Model::named(zoo::build(Arch::ConvNet, spec(), &mut rng), spec(), "b");
        assert_ne!(restored.predict_proba(&img), before);
        load_state(&mut restored, &state).expect("same architecture");
        assert_eq!(restored.predict_proba(&img), before);
        assert_eq!(restored.name, "a");
    }

    #[test]
    fn load_rejects_different_architecture() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut convnet = Model::new(zoo::build(Arch::ConvNet, spec(), &mut rng), spec());
        let mut mobilenet = Model::new(zoo::build(Arch::MobileNet, spec(), &mut rng), spec());
        let state = save_state(&mut convnet);
        let err = load_state(&mut mobilenet, &state).unwrap_err();
        assert!(matches!(
            err,
            LoadStateError::TensorCountMismatch { .. } | LoadStateError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn load_rejects_internally_corrupt_state() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = Model::new(zoo::build(Arch::ConvNet, spec(), &mut rng), spec());
        let clean = save_state(&mut model);
        let img = Tensor::rand_uniform(&[1, 16, 16], 0.0, 1.0, &mut rng);
        let reference = model.predict_proba(&img);

        // Truncated payload: shape metadata intact, data short. Without the
        // length check this would panic in copy_from_slice.
        let mut truncated = clean.clone();
        truncated.tensors[0].pop();
        assert!(matches!(
            load_state(&mut model, &truncated).unwrap_err(),
            LoadStateError::LengthMismatch { index: 0, .. }
        ));

        // Oversized payload on the last tensor.
        let mut padded = clean.clone();
        let last = padded.tensors.len() - 1;
        padded.tensors[last].push(0.0);
        assert!(matches!(
            load_state(&mut model, &padded).unwrap_err(),
            LoadStateError::LengthMismatch { .. }
        ));

        // Missing payload vector entirely (shapes/tensors misaligned).
        let mut missing = clean.clone();
        missing.tensors.pop();
        assert!(matches!(
            load_state(&mut model, &missing).unwrap_err(),
            LoadStateError::TensorCountMismatch { .. }
        ));

        // Every failed load must leave the model untouched.
        assert_eq!(model.predict_proba(&img), reference);
    }

    #[test]
    fn state_has_serde_impls_and_consistent_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = Model::new(zoo::build(Arch::ConvNet, spec(), &mut rng), spec());
        let state = save_state(&mut model);
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<ModelState>();
        assert!(!state.shapes.is_empty());
        assert_eq!(state.shapes.len(), state.tensors.len());
        for (s, t) in state.shapes.iter().zip(&state.tensors) {
            assert_eq!(s.iter().product::<usize>(), t.len());
        }
    }
}
