use remix_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four feature-space diversity metrics shortlisted in §II-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiversityMetric {
    /// Coefficient of determination R² (Eq. 2): 0 = maximal diversity,
    /// 1 = none.
    RSquared,
    /// Cosine distance `1 − cos(A, B)` on flattened matrices: 0 = none,
    /// 2 = maximal.
    CosineDistance,
    /// Frobenius norm of `A − B` (Eq. 3): unbounded, higher = more diverse.
    FrobeniusNorm,
    /// Elementwise Wasserstein/earth-mover form (Eq. 4): mean absolute
    /// difference, unbounded, higher = more diverse.
    Wasserstein,
}

impl DiversityMetric {
    /// All four metrics in paper order.
    pub const ALL: [DiversityMetric; 4] = [
        DiversityMetric::RSquared,
        DiversityMetric::CosineDistance,
        DiversityMetric::FrobeniusNorm,
        DiversityMetric::Wasserstein,
    ];

    /// Computes the raw metric value between two feature matrices.
    ///
    /// Matrices may have any shape as long as the element counts agree (the
    /// paper flattens them for cosine distance anyway).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn distance(&self, a: &Tensor, b: &Tensor) -> f32 {
        assert_eq!(a.len(), b.len(), "feature matrices must have equal size");
        match self {
            DiversityMetric::RSquared => r_squared(a, b),
            DiversityMetric::CosineDistance => cosine_distance(a, b),
            DiversityMetric::FrobeniusNorm => frobenius(a, b),
            DiversityMetric::Wasserstein => wasserstein(a, b),
        }
    }

    /// Converts the raw metric value into a *diversity weight factor* δ:
    /// higher = more diverse, per the paper's §IV-(2). R² and cosine
    /// similarity have an inverse relationship with diversity, so their
    /// reciprocal-style transforms are applied; Frobenius and Wasserstein are
    /// used directly.
    pub fn to_weight_factor(&self, raw: f32) -> f32 {
        match self {
            // R² in [0,1], 1 = identical: reciprocal with clamping
            DiversityMetric::RSquared => 1.0 / raw.max(1e-3) - 1.0,
            // cosine distance already grows with diversity in [0, 2]
            DiversityMetric::CosineDistance => raw,
            DiversityMetric::FrobeniusNorm | DiversityMetric::Wasserstein => raw,
        }
    }

    /// Diversity weight factor straight from two matrices.
    pub fn diversity(&self, a: &Tensor, b: &Tensor) -> f32 {
        self.to_weight_factor(self.distance(a, b))
    }
}

impl fmt::Display for DiversityMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiversityMetric::RSquared => "R²",
            DiversityMetric::CosineDistance => "Cosine Distance",
            DiversityMetric::FrobeniusNorm => "Frobenius Norm",
            DiversityMetric::Wasserstein => "Wasserstein",
        };
        f.write_str(s)
    }
}

/// Squared Pearson correlation (paper Eq. 2). Degenerate (zero-variance)
/// inputs yield 1.0 for identical matrices and 0.0 otherwise.
fn r_squared(a: &Tensor, b: &Tensor) -> f32 {
    let (ma, mb) = (a.mean(), b.mean());
    let (sa, sb) = (a.std(), b.std());
    if sa <= f32::EPSILON || sb <= f32::EPSILON {
        return if a.data() == b.data() { 1.0 } else { 0.0 };
    }
    let n = a.len() as f32;
    let cov: f32 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x - ma) * (y - mb))
        .sum::<f32>()
        / n;
    let r = cov / (sa * sb);
    (r * r).clamp(0.0, 1.0)
}

/// Cosine distance on flattened matrices. Zero vectors are treated as
/// maximally distant from non-zero vectors and identical to each other.
fn cosine_distance(a: &Tensor, b: &Tensor) -> f32 {
    let (na, nb) = (a.norm(), b.norm());
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        return if (na <= f32::EPSILON) == (nb <= f32::EPSILON) {
            0.0
        } else {
            1.0
        };
    }
    let dot = a.dot_flat(b).expect("equal lengths checked");
    (1.0 - dot / (na * nb)).clamp(0.0, 2.0)
}

/// Frobenius norm of the difference (paper Eq. 3).
fn frobenius(a: &Tensor, b: &Tensor) -> f32 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// Elementwise Wasserstein form of the paper's Eq. 4: the mean absolute
/// difference between the matrices.
fn wasserstein(a: &Tensor, b: &Tensor) -> f32 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x - y).abs())
        .sum::<f32>()
        / a.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn identical_matrices_have_zero_diversity() {
        let a = t(&[0.2, 0.8, 0.5, 0.1]);
        assert!((DiversityMetric::RSquared.distance(&a, &a) - 1.0).abs() < 1e-5);
        assert!(DiversityMetric::CosineDistance.distance(&a, &a) < 1e-5);
        assert_eq!(DiversityMetric::FrobeniusNorm.distance(&a, &a), 0.0);
        assert_eq!(DiversityMetric::Wasserstein.distance(&a, &a), 0.0);
    }

    #[test]
    fn all_metrics_are_commutative() {
        let a = t(&[0.9, 0.1, 0.4, 0.6]);
        let b = t(&[0.2, 0.7, 0.3, 0.8]);
        for m in DiversityMetric::ALL {
            let ab = m.distance(&a, &b);
            let ba = m.distance(&b, &a);
            assert!((ab - ba).abs() < 1e-6, "{m} not commutative");
        }
    }

    #[test]
    fn r_squared_matches_hand_computation() {
        // perfectly anti-correlated: r = -1, r² = 1
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[3.0, 2.0, 1.0]);
        assert!((DiversityMetric::RSquared.distance(&a, &b) - 1.0).abs() < 1e-5);
        // uncorrelated-ish
        let c = t(&[1.0, -1.0, 0.0]);
        let d = t(&[1.0, 1.0, -2.0]);
        assert!(DiversityMetric::RSquared.distance(&c, &d) < 0.3);
    }

    #[test]
    fn cosine_distance_range_endpoints() {
        let a = t(&[1.0, 0.0]);
        let b = t(&[0.0, 1.0]);
        let o = t(&[-1.0, 0.0]);
        assert!((DiversityMetric::CosineDistance.distance(&a, &b) - 1.0).abs() < 1e-6);
        assert!((DiversityMetric::CosineDistance.distance(&a, &o) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn frobenius_matches_euclidean() {
        let a = t(&[0.0, 0.0]);
        let b = t(&[3.0, 4.0]);
        assert_eq!(DiversityMetric::FrobeniusNorm.distance(&a, &b), 5.0);
    }

    #[test]
    fn wasserstein_is_mean_absolute_difference() {
        let a = t(&[0.0, 1.0, 2.0, 3.0]);
        let b = t(&[1.0, 1.0, 0.0, 3.0]);
        assert!((DiversityMetric::Wasserstein.distance(&a, &b) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs_do_not_panic_or_nan() {
        let z = Tensor::zeros(&[4]);
        let c = Tensor::full(&[4], 2.0);
        for m in DiversityMetric::ALL {
            for (x, y) in [(&z, &z), (&z, &c), (&c, &c)] {
                let v = m.distance(x, y);
                assert!(v.is_finite(), "{m} produced {v}");
                let w = m.to_weight_factor(v);
                assert!(w.is_finite(), "{m} weight {w}");
            }
        }
    }

    #[test]
    fn weight_factor_increases_with_diversity() {
        // R²: lower similarity -> higher weight factor
        let m = DiversityMetric::RSquared;
        assert!(m.to_weight_factor(0.1) > m.to_weight_factor(0.9));
        // cosine: identity transform
        assert_eq!(DiversityMetric::CosineDistance.to_weight_factor(1.3), 1.3);
    }

    #[test]
    fn works_on_rank2_matrices() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]).unwrap();
        assert!((DiversityMetric::CosineDistance.distance(&a, &b) - 1.0).abs() < 1e-6);
    }
}
