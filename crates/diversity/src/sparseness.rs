//! Feature sparseness σ (paper §IV-(3)).

use remix_tensor::Tensor;

/// Default near-zero threshold used by the paper (values below 0.01 count as
/// zero).
pub const DEFAULT_THRESHOLD: f32 = 0.01;

/// Fraction of near-zero entries (|v| < 0.01) in a feature matrix.
///
/// Ranges from 0 (least sparse — the model "looks at everything", which the
/// paper found correlates with incorrect predictions) to 1 (most sparse).
pub fn sparseness(matrix: &Tensor) -> f32 {
    sparseness_with_threshold(matrix, DEFAULT_THRESHOLD)
}

/// [`sparseness`] with an explicit near-zero threshold.
///
/// # Panics
///
/// Panics if the matrix is empty or the threshold is negative.
pub fn sparseness_with_threshold(matrix: &Tensor, threshold: f32) -> f32 {
    assert!(!matrix.is_empty(), "sparseness of an empty matrix");
    assert!(threshold >= 0.0, "negative sparseness threshold");
    let zeros = matrix.data().iter().filter(|v| v.abs() < threshold).count();
    zeros as f32 / matrix.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zero_matrix_is_fully_sparse() {
        assert_eq!(sparseness(&Tensor::zeros(&[4, 4])), 1.0);
    }

    #[test]
    fn dense_matrix_has_zero_sparseness() {
        assert_eq!(sparseness(&Tensor::full(&[4, 4], 0.5)), 0.0);
    }

    #[test]
    fn counts_near_zero_values() {
        let m = Tensor::from_slice(&[0.005, -0.009, 0.5, 0.02]);
        assert_eq!(sparseness(&m), 0.5);
    }

    #[test]
    fn threshold_is_respected() {
        let m = Tensor::from_slice(&[0.05, 0.5]);
        assert_eq!(sparseness_with_threshold(&m, 0.1), 0.5);
        assert_eq!(sparseness_with_threshold(&m, 0.01), 0.0);
    }

    #[test]
    fn sparseness_is_bounded() {
        let m = Tensor::from_slice(&[-5.0, 0.0, 5.0]);
        let s = sparseness(&m);
        assert!((0.0..=1.0).contains(&s));
    }
}
