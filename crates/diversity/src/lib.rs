//! Diversity metrics for the ReMIX reproduction (paper §II-D).
//!
//! Two families:
//!
//! * **feature-space** metrics comparing two XAI feature matrices `A`, `B` —
//!   Coefficient of Determination (R², Eq. 2), Cosine Distance, Frobenius
//!   Norm (Eq. 3), and Wasserstein Distance (Eq. 4, the paper's elementwise
//!   mean-absolute-difference form). All are commutative.
//! * **output-space** — normalized Shannon entropy over ensemble prediction
//!   confidences (Eq. 1).
//!
//! Plus the *feature sparseness* σ of §IV-(3): the fraction of near-zero
//! entries of a feature matrix, which ReMIX runs through `tanh(α·σ)` to
//! down-weight unfocused models.
//!
//! # Example
//!
//! ```
//! use remix_diversity::DiversityMetric;
//! use remix_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
//! let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2])?;
//! let d = DiversityMetric::CosineDistance.distance(&a, &b);
//! assert!((d - 1.0).abs() < 1e-6); // orthogonal matrices
//! # Ok::<(), remix_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]

mod entropy;
mod metric;
pub mod pairwise;
mod sparseness;

pub use entropy::shannon_entropy;
pub use metric::DiversityMetric;
pub use pairwise::{kohavi_wolpert_variance, OracleTable};
pub use sparseness::{sparseness, sparseness_with_threshold};
