//! Kuncheva & Whitaker's classical pairwise ensemble-diversity statistics
//! (paper §II-D background).
//!
//! The paper notes these are "largely limited to binary classifiers": they
//! operate on *oracle outputs* — per-sample correct/incorrect indicators of
//! two classifiers — rather than on predictions directly, which is why ReMIX
//! replaces them with feature-space metrics. They are provided here both for
//! completeness and so experiments can contrast output-space and
//! feature-space notions of diversity.
//!
//! With `a` = both correct, `b` = only the first correct, `c` = only the
//! second correct, `d` = both wrong (as fractions), the measures are:
//!
//! * Q statistic: `(ad − bc) / (ad + bc)` ∈ [−1, 1]; lower = more diverse;
//! * disagreement: `b + c` ∈ [0, 1]; higher = more diverse;
//! * double-fault: `d` ∈ [0, 1]; lower = more diverse;
//! * correlation ρ: `(ad − bc) / √((a+b)(c+d)(a+c)(b+d))`.

use serde::{Deserialize, Serialize};

/// The 2×2 oracle-agreement table of two classifiers, as fractions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleTable {
    /// Fraction where both classifiers are correct.
    pub both: f32,
    /// Fraction where only the first is correct.
    pub only_first: f32,
    /// Fraction where only the second is correct.
    pub only_second: f32,
    /// Fraction where both are wrong.
    pub neither: f32,
}

impl OracleTable {
    /// Builds the table from two correctness vectors.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ or are zero.
    pub fn from_oracle(first: &[bool], second: &[bool]) -> Self {
        assert_eq!(first.len(), second.len(), "oracle length mismatch");
        assert!(!first.is_empty(), "empty oracle vectors");
        let n = first.len() as f32;
        let mut t = OracleTable {
            both: 0.0,
            only_first: 0.0,
            only_second: 0.0,
            neither: 0.0,
        };
        for (&f, &s) in first.iter().zip(second) {
            match (f, s) {
                (true, true) => t.both += 1.0,
                (true, false) => t.only_first += 1.0,
                (false, true) => t.only_second += 1.0,
                (false, false) => t.neither += 1.0,
            }
        }
        t.both /= n;
        t.only_first /= n;
        t.only_second /= n;
        t.neither /= n;
        t
    }

    /// Yule's Q statistic ∈ [−1, 1]; 0 for independent classifiers, lower =
    /// more diverse. Degenerate tables (no disagreement *and* no agreement
    /// products) return 0.
    pub fn q_statistic(&self) -> f32 {
        let ad = self.both * self.neither;
        let bc = self.only_first * self.only_second;
        if ad + bc <= f32::EPSILON {
            return 0.0;
        }
        (ad - bc) / (ad + bc)
    }

    /// Disagreement measure ∈ [0, 1]; higher = more diverse.
    pub fn disagreement(&self) -> f32 {
        self.only_first + self.only_second
    }

    /// Double-fault measure ∈ [0, 1]; lower = more diverse.
    pub fn double_fault(&self) -> f32 {
        self.neither
    }

    /// Pearson correlation ρ of the two oracles; 0 for degenerate marginals.
    pub fn correlation(&self) -> f32 {
        let (a, b, c, d) = (self.both, self.only_first, self.only_second, self.neither);
        let denom = ((a + b) * (c + d) * (a + c) * (b + d)).sqrt();
        if denom <= f32::EPSILON {
            return 0.0;
        }
        ((a * d - b * c) / denom).clamp(-1.0, 1.0)
    }
}

/// Kohavi–Wolpert variance over an ensemble's oracle outputs: the average of
/// `p(1−p)` where `p` is the per-sample fraction of correct classifiers.
/// Higher = more diverse; 0 when all classifiers always agree.
///
/// # Panics
///
/// Panics if `oracles` is empty or the member lengths differ.
pub fn kohavi_wolpert_variance(oracles: &[Vec<bool>]) -> f32 {
    assert!(!oracles.is_empty(), "no classifiers");
    let n = oracles[0].len();
    assert!(
        n > 0 && oracles.iter().all(|o| o.len() == n),
        "ragged oracles"
    );
    let l = oracles.len() as f32;
    let mut total = 0.0;
    for sample in 0..n {
        let correct = oracles.iter().filter(|o| o[sample]).count() as f32;
        let p = correct / l;
        total += p * (1.0 - p);
    }
    total / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_classifiers_have_q_one_and_no_disagreement() {
        let o = vec![true, false, true, true];
        let t = OracleTable::from_oracle(&o, &o);
        assert_eq!(t.q_statistic(), 1.0);
        assert_eq!(t.disagreement(), 0.0);
        assert!((t.correlation() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn complementary_classifiers_are_maximally_diverse() {
        let a = vec![true, true, false, false];
        let b = vec![false, false, true, true];
        let t = OracleTable::from_oracle(&a, &b);
        assert_eq!(t.q_statistic(), -1.0);
        assert_eq!(t.disagreement(), 1.0);
        assert_eq!(t.double_fault(), 0.0);
    }

    #[test]
    fn table_fractions_sum_to_one() {
        let a = vec![true, false, true, false, true];
        let b = vec![true, true, false, false, true];
        let t = OracleTable::from_oracle(&a, &b);
        let sum = t.both + t.only_first + t.only_second + t.neither;
        assert!((sum - 1.0).abs() < 1e-6);
        assert!((t.both - 0.4).abs() < 1e-6);
        assert!((t.disagreement() - 0.4).abs() < 1e-6);
    }

    #[test]
    fn kw_variance_bounds_and_extremes() {
        // all agree -> 0
        let same = vec![vec![true; 6], vec![true; 6], vec![true; 6]];
        assert_eq!(kohavi_wolpert_variance(&same), 0.0);
        // 3 classifiers, always exactly one correct -> p=1/3, p(1-p)=2/9
        let spread = vec![
            vec![true, false, false],
            vec![false, true, false],
            vec![false, false, true],
        ];
        let kw = kohavi_wolpert_variance(&spread);
        assert!((kw - 2.0 / 9.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_ragged_input() {
        OracleTable::from_oracle(&[true], &[true, false]);
    }
}
