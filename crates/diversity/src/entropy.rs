//! Output-space diversity: normalized Shannon entropy (paper Eq. 1).

/// Normalized Shannon entropy of a prediction-confidence vector:
/// `H = −(Σ pᵢ ln pᵢ) / ln S`, where `S` is the number of classes.
///
/// Ranges from 0 (all confidence on one class — no output-space diversity)
/// to 1 (uniform — maximal diversity). Zero-probability entries contribute
/// nothing, as in the usual `0·ln 0 = 0` convention. The vector is
/// renormalized internally so near-simplex inputs behave well.
///
/// # Panics
///
/// Panics if `probs` has fewer than two entries or sums to zero.
pub fn shannon_entropy(probs: &[f32]) -> f32 {
    assert!(probs.len() >= 2, "entropy needs at least two classes");
    let total: f32 = probs.iter().sum();
    assert!(total > 0.0, "probability vector sums to zero");
    let h: f32 = probs
        .iter()
        .map(|&p| {
            let p = p / total;
            if p > 0.0 {
                -p * p.ln()
            } else {
                0.0
            }
        })
        .sum();
    (h / (probs.len() as f32).ln()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_has_zero_entropy() {
        assert_eq!(shannon_entropy(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn uniform_has_unit_entropy() {
        assert!((shannon_entropy(&[0.25; 4]) - 1.0).abs() < 1e-6);
        assert!((shannon_entropy(&[1.0 / 43.0; 43]) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn entropy_is_monotone_in_spread() {
        let peaked = shannon_entropy(&[0.9, 0.05, 0.05]);
        let spread = shannon_entropy(&[0.5, 0.3, 0.2]);
        assert!(peaked < spread);
    }

    #[test]
    fn unnormalized_input_is_renormalized() {
        assert!((shannon_entropy(&[2.0, 2.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_class() {
        shannon_entropy(&[1.0]);
    }
}
