//! Output-space diversity: normalized Shannon entropy (paper Eq. 1).

/// Normalized Shannon entropy of a prediction-confidence vector:
/// `H = −(Σ pᵢ ln pᵢ) / ln S`, where `S` is the number of classes.
///
/// Ranges from 0 (all confidence on one class — no output-space diversity)
/// to 1 (uniform — maximal diversity). Zero-probability entries contribute
/// nothing, as in the usual `0·ln 0 = 0` convention. The vector is
/// renormalized internally so near-simplex inputs behave well.
///
/// Degenerate vectors — empty, single-class, or summing to zero — have no
/// spread to measure and return `0.0`. The serving triage path feeds this
/// function whatever class count the caller's model declares, so it must
/// total-function rather than assert.
pub fn shannon_entropy(probs: &[f32]) -> f32 {
    if probs.len() < 2 {
        return 0.0;
    }
    let total: f32 = probs.iter().sum();
    // `partial_cmp` so a NaN total (poisoned input) lands on the degenerate
    // branch instead of flowing through the divisions below.
    if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return 0.0;
    }
    let h: f32 = probs
        .iter()
        .map(|&p| {
            let p = p / total;
            if p > 0.0 {
                -p * p.ln()
            } else {
                0.0
            }
        })
        .sum();
    (h / (probs.len() as f32).ln()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_has_zero_entropy() {
        assert_eq!(shannon_entropy(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn uniform_has_unit_entropy() {
        assert!((shannon_entropy(&[0.25; 4]) - 1.0).abs() < 1e-6);
        assert!((shannon_entropy(&[1.0 / 43.0; 43]) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn entropy_is_monotone_in_spread() {
        let peaked = shannon_entropy(&[0.9, 0.05, 0.05]);
        let spread = shannon_entropy(&[0.5, 0.3, 0.2]);
        assert!(peaked < spread);
    }

    #[test]
    fn unnormalized_input_is_renormalized() {
        assert!((shannon_entropy(&[2.0, 2.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_vectors_have_zero_entropy() {
        // Fewer than two classes: nothing to spread over.
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[1.0]), 0.0);
        assert_eq!(shannon_entropy(&[0.0]), 0.0);
        // Zero-sum and NaN-sum vectors: no measurable distribution.
        assert_eq!(shannon_entropy(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(shannon_entropy(&[f32::NAN, 1.0]), 0.0);
    }
}
