//! Batch size is pure execution strategy: every technique materializes its
//! perturbations (and all RNG draws) before the first model call, so the
//! feature matrix must be bit-identical for every `XaiBudget.batch_size` —
//! including sizes that leave a ragged final batch.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use remix_nn::{zoo, Arch, InputSpec, Model};
use remix_tensor::Tensor;
use remix_xai::{Explainer, ExplainerConfig, XaiBudget, XaiTechnique};

fn spec() -> InputSpec {
    InputSpec {
        channels: 1,
        size: 8,
        num_classes: 3,
    }
}

fn model() -> Model {
    let mut rng = StdRng::seed_from_u64(1);
    Model::new(zoo::build(Arch::ConvNet, spec(), &mut rng), spec())
}

fn explain_with_batch(technique: XaiTechnique, batch_size: usize) -> Tensor {
    let mut m = model();
    let image = Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.0, &mut StdRng::seed_from_u64(2));
    let config = ExplainerConfig {
        budget: XaiBudget {
            batch_size,
            ..XaiBudget::default()
        },
        ..ExplainerConfig::default()
    };
    let explainer = Explainer::with_config(technique, config);
    explainer.explain(&mut m, &image, 0, &mut StdRng::seed_from_u64(3))
}

#[test]
fn every_technique_is_bit_identical_across_batch_sizes() {
    for technique in XaiTechnique::ALL {
        let per_sample = explain_with_batch(technique, 1);
        let batched = explain_with_batch(technique, 32);
        assert_eq!(
            per_sample.data(),
            batched.data(),
            "{technique:?}: batch 32 diverged from batch 1"
        );
    }
}

#[test]
fn optimized_variants_are_batch_size_invariant() {
    // NoiseGrad / FusionGrad run per-sample by design (per-sample weight
    // noise), so the budget must have no effect at all.
    for technique in XaiTechnique::OPTIMIZED {
        let a = explain_with_batch(technique, 1);
        let b = explain_with_batch(technique, 32);
        assert_eq!(a.data(), b.data(), "{technique:?} read the batch size");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ragged final batches: any batch size (most of which do not divide
    /// the perturbation counts) reproduces the per-sample result.
    #[test]
    fn ragged_batch_sizes_are_bit_identical(batch_size in 1usize..24) {
        for technique in [XaiTechnique::SmoothGrad, XaiTechnique::Shap, XaiTechnique::Lime] {
            let per_sample = explain_with_batch(technique, 1);
            let batched = explain_with_batch(technique, batch_size);
            prop_assert_eq!(
                per_sample.data(),
                batched.data(),
                "{:?}: batch {} diverged",
                technique,
                batch_size
            );
        }
    }
}
