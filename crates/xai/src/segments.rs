//! Patch segmentation shared by the model-agnostic techniques (SHAP, LIME).
//!
//! Real SHAP/LIME image pipelines use superpixel segmentation; on the small
//! procedural images of this reproduction a regular patch grid plays the same
//! role (groups of pixels toggled together as one interpretable feature).

/// A regular grid of square segments over an `H×W` image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentGrid {
    height: usize,
    width: usize,
    patch: usize,
    grid_h: usize,
    grid_w: usize,
}

impl SegmentGrid {
    /// Creates a grid of `patch`×`patch` segments over an `height`×`width`
    /// image. Edge segments absorb any remainder.
    ///
    /// # Panics
    ///
    /// Panics if `patch` is zero or larger than the image.
    pub fn new(height: usize, width: usize, patch: usize) -> Self {
        assert!(patch > 0 && patch <= height && patch <= width);
        Self {
            height,
            width,
            patch,
            grid_h: height.div_ceil(patch),
            grid_w: width.div_ceil(patch),
        }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.grid_h * self.grid_w
    }

    /// Whether the grid has no segments (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat spatial pixel indices (`y*W + x`) belonging to segment `seg`.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range.
    pub fn pixels(&self, seg: usize) -> Vec<usize> {
        assert!(seg < self.len(), "segment {seg} out of range");
        let gy = seg / self.grid_w;
        let gx = seg % self.grid_w;
        let y0 = gy * self.patch;
        let x0 = gx * self.patch;
        let y1 = (y0 + self.patch).min(self.height);
        let x1 = (x0 + self.patch).min(self.width);
        let mut out = Vec::with_capacity((y1 - y0) * (x1 - x0));
        for y in y0..y1 {
            for x in x0..x1 {
                out.push(y * self.width + x);
            }
        }
        out
    }

    /// Pixel indices of all segments where `mask[seg]` is `false` (the
    /// "removed" features of a coalition).
    pub fn masked_pixels(&self, mask: &[bool]) -> Vec<usize> {
        assert_eq!(mask.len(), self.len());
        let mut out = Vec::new();
        for (seg, &on) in mask.iter().enumerate() {
            if !on {
                out.extend(self.pixels(seg));
            }
        }
        out
    }

    /// Paints per-segment scores onto an `[H, W]` matrix (each pixel gets its
    /// segment's score).
    pub fn upsample(&self, scores: &[f32]) -> remix_tensor::Tensor {
        assert_eq!(scores.len(), self.len());
        let mut out = remix_tensor::Tensor::zeros(&[self.height, self.width]);
        let buf = out.data_mut();
        for (seg, &s) in scores.iter().enumerate() {
            for p in self.pixels(seg) {
                buf[p] = s;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division_grid() {
        let g = SegmentGrid::new(8, 8, 4);
        assert_eq!(g.len(), 4);
        assert_eq!(g.pixels(0).len(), 16);
        // all segments partition the image
        let mut all: Vec<usize> = (0..g.len()).flat_map(|s| g.pixels(s)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn remainder_goes_to_edge_segments() {
        let g = SegmentGrid::new(10, 10, 4);
        assert_eq!(g.len(), 9);
        let mut all: Vec<usize> = (0..g.len()).flat_map(|s| g.pixels(s)).collect();
        all.sort_unstable();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn masked_pixels_selects_off_segments() {
        let g = SegmentGrid::new(4, 4, 2);
        let masked = g.masked_pixels(&[true, false, true, false]);
        assert_eq!(masked.len(), 8);
        assert!(masked.contains(&2)); // segment 1 covers columns 2-3 of rows 0-1
    }

    #[test]
    fn upsample_paints_segments() {
        let g = SegmentGrid::new(4, 4, 2);
        let m = g.upsample(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.at(&[0, 0]), 1.0);
        assert_eq!(m.at(&[0, 3]), 2.0);
        assert_eq!(m.at(&[3, 0]), 3.0);
        assert_eq!(m.at(&[3, 3]), 4.0);
    }
}
