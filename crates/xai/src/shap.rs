//! SHAP (Lundberg & Lee) via permutation-sampling Shapley values.
//!
//! Exact Shapley values need `2^N` coalition evaluations; like the SHAP
//! library, this implementation approximates them by sampling. Features are
//! patch segments: for each sampled permutation the segments are revealed in
//! order, and each segment's marginal contribution to the predicted-class
//! probability is accumulated. Removed segments are masked to the baseline.

use crate::feature::apply_pixel_mask;
use crate::{batch, ExplainerConfig, SegmentGrid};
use rand::{seq::SliceRandom, Rng};
use remix_nn::Model;
use remix_tensor::Tensor;

/// SHAP feature matrix for `(model, image, class)`.
///
/// Every permutation's reveal order is drawn first (model evaluation
/// consumes no RNG, so the shuffle stream matches the historical interleaved
/// loop), then all `permutations × (t + 1)` coalition inputs are
/// materialized and pushed through the model in batches. The marginal
/// contributions are read back in the original reveal order.
pub(crate) fn explain(
    model: &mut Model,
    image: &Tensor,
    class: usize,
    config: &ExplainerConfig,
    rng: &mut impl Rng,
) -> Tensor {
    let (h, w) = (image.shape()[1], image.shape()[2]);
    let grid = SegmentGrid::new(h, w, config.segment.min(h).max(1));
    let t = grid.len();
    let permutations = config.budget.shap_permutations.max(1);
    let orders: Vec<Vec<usize>> = (0..permutations)
        .map(|_| {
            let mut order: Vec<usize> = (0..t).collect();
            order.shuffle(rng);
            order
        })
        .collect();
    // Materialize every coalition along every permutation: the empty
    // coalition, then one more segment revealed at each step.
    let mut inputs = Vec::with_capacity(permutations * (t + 1));
    for order in &orders {
        let mut mask = vec![false; t];
        inputs.push(coalition_input(image, &grid, &mask, config.baseline));
        for &seg in order {
            mask[seg] = true;
            inputs.push(coalition_input(image, &grid, &mask, config.baseline));
        }
    }
    let probs = batch::class_probs(model, &inputs, class, config.budget.effective_batch_size());
    let mut phi = vec![0.0f32; t];
    let mut cursor = probs.iter();
    for order in &orders {
        let mut prev = *cursor.next().expect("one prob per coalition");
        for &seg in order {
            let cur = *cursor.next().expect("one prob per coalition");
            phi[seg] += cur - prev;
            prev = cur;
        }
    }
    for v in &mut phi {
        *v = v.abs() / permutations as f32;
    }
    grid.upsample(&phi).normalize_minmax()
}

/// The input with all unrevealed segments masked to the baseline.
fn coalition_input(image: &Tensor, grid: &SegmentGrid, mask: &[bool], baseline: f32) -> Tensor {
    let masked_pixels = grid.masked_pixels(mask);
    apply_pixel_mask(image, &masked_pixels, baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use remix_nn::layers::{Dense, Flatten};
    use remix_nn::{InputSpec, Layer, Sequential};

    /// Model whose class-0 logit depends ONLY on the top-left 4×4 segment.
    fn segment_sensitive_model() -> Model {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Flatten::new());
        let mut dense = Dense::new(64, 2, &mut rng);
        dense.visit_params(&mut |p, _| {
            if p.len() == 128 {
                for v in p.data_mut() {
                    *v = 0.0;
                }
                // class 0 weight = 1 on pixels of the top-left 4x4 block
                for y in 0..4 {
                    for x in 0..4 {
                        p.data_mut()[y * 8 + x] = 1.0;
                    }
                }
            } else {
                for v in p.data_mut() {
                    *v = 0.0;
                }
            }
        });
        net.push(dense);
        Model::new(
            net,
            InputSpec {
                channels: 1,
                size: 8,
                num_classes: 2,
            },
        )
    }

    #[test]
    fn shapley_mass_lands_on_the_influential_segment() {
        let mut model = segment_sensitive_model();
        let image = Tensor::ones(&[1, 8, 8]);
        let mut rng = StdRng::seed_from_u64(2);
        let m = explain(&mut model, &image, 0, &ExplainerConfig::default(), &mut rng);
        // the top-left segment should dominate: its value is the max (1.0)
        assert_eq!(m.at(&[0, 0]), 1.0);
        assert_eq!(m.at(&[1, 3]), 1.0);
        // the other three segments should be much weaker
        assert!(m.at(&[0, 5]) < 0.3);
        assert!(m.at(&[5, 0]) < 0.3);
        assert!(m.at(&[5, 5]) < 0.3);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut model = segment_sensitive_model();
        let image = Tensor::ones(&[1, 8, 8]);
        let cfg = ExplainerConfig::default();
        let a = explain(&mut model, &image, 0, &cfg, &mut StdRng::seed_from_u64(3));
        let b = explain(&mut model, &image, 0, &cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
