//! Post-hoc XAI techniques for the ReMIX reproduction (paper §II-C).
//!
//! All five techniques shortlisted by the paper are implemented from scratch
//! against the `remix-nn` model substrate:
//!
//! | technique | kind | mechanism here |
//! |---|---|---|
//! | Smooth Gradients | model-dependent | input gradients averaged over noisy copies |
//! | Integrated Gradients | model-dependent | gradients accumulated along a black-baseline path |
//! | SHAP | model-agnostic | permutation-sampling Shapley values over patch segments |
//! | LIME | model-agnostic | ridge-regression surrogate over random segment masks |
//! | Counterfactual Explanations | model-agnostic* | gradient-guided minimal perturbation until the label flips |
//!
//! (*the CFE search uses gradients for efficiency, as modern CFE libraries
//! do for differentiable models; the explanation itself is the pixel delta.)
//!
//! Every technique produces a 2-D **feature matrix** (`[H, W]`,
//! channel-aggregated, min–max normalized to `[0, 1]`) — the common currency
//! consumed by `remix-diversity` and `remix-core`.
//!
//! The [`eval`] module provides the paper's two XAI quality measures:
//! faithfulness correlation (Bhatt et al.) and Relative Input Stability
//! (Agarwal et al.), used to answer RQ3.
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use remix_nn::{zoo, Arch, InputSpec, Model};
//! use remix_tensor::Tensor;
//! use remix_xai::{Explainer, XaiTechnique};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let spec = InputSpec { channels: 1, size: 8, num_classes: 2 };
//! let mut model = Model::new(zoo::build(Arch::ConvNet, spec, &mut rng), spec);
//! let image = Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.0, &mut rng);
//! let explainer = Explainer::new(XaiTechnique::SmoothGrad);
//! let matrix = explainer.explain(&mut model, &image, 0, &mut rng);
//! assert_eq!(matrix.shape(), &[8, 8]);
//! ```

#![warn(missing_docs)]

mod batch;
mod cfe;
pub mod eval;
mod feature;
mod intgrad;
mod lime;
pub mod noisegrad;
mod segments;
mod shap;
mod smoothgrad;
mod technique;

pub use feature::{aggregate_channels, apply_pixel_mask};
pub use segments::SegmentGrid;
pub use technique::{Explainer, ExplainerConfig, XaiBudget, XaiLevel, XaiTechnique};
