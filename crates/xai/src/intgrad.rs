//! Integrated Gradients (Sundararajan et al.): attributions accumulated
//! along the straight path from a black baseline to the input,
//! `IG_i = (x_i − x'_i) · Σ_k ∇f(x' + k/m (x − x'))_i / m`.

use crate::feature::aggregate_channels;
use crate::{batch, ExplainerConfig};
use remix_nn::Model;
use remix_tensor::Tensor;

/// Integrated-Gradients feature matrix for `(model, image, class)`.
///
/// The path points are materialized up front and evaluated in batches; the
/// gradient sum accumulates in path order, bit-identical to the historical
/// one-point-at-a-time loop.
pub(crate) fn explain(
    model: &mut Model,
    image: &Tensor,
    class: usize,
    config: &ExplainerConfig,
) -> Tensor {
    let steps = config.budget.ig_steps.max(1);
    let baseline = Tensor::full(image.shape(), config.baseline);
    let delta = image.sub(&baseline).expect("same shape");
    let points: Vec<Tensor> = (1..=steps)
        .map(|k| {
            let alpha = k as f32 / steps as f32;
            baseline.add(&delta.scale(alpha)).expect("same shape")
        })
        .collect();
    let grads = batch::class_gradients(model, &points, class, config.budget.effective_batch_size());
    let mut grad_sum = Tensor::zeros(image.shape());
    for grad in &grads {
        grad_sum.add_assign(grad).expect("gradient shape");
    }
    let attribution = delta
        .mul(&grad_sum.scale(1.0 / steps as f32))
        .expect("same shape");
    aggregate_channels(&attribution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use remix_nn::layers::{Dense, Flatten};
    use remix_nn::{InputSpec, Layer, Sequential};

    fn linear_model(w_class0: &[f32]) -> Model {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Flatten::new());
        let mut dense = Dense::new(4, 2, &mut rng);
        let mut w = vec![0.0f32; 8];
        w[..4].copy_from_slice(w_class0);
        dense.visit_params(&mut |p, _| {
            if p.len() == 8 {
                p.data_mut().copy_from_slice(&w);
            } else {
                for v in p.data_mut() {
                    *v = 0.0;
                }
            }
        });
        net.push(dense);
        Model::new(
            net,
            InputSpec {
                channels: 1,
                size: 2,
                num_classes: 2,
            },
        )
    }

    #[test]
    fn linear_model_ig_equals_weight_times_input() {
        // for linear f, IG_i = w_i * x_i exactly (completeness axiom)
        let mut model = linear_model(&[2.0, -1.0, 0.0, 4.0]);
        let image = Tensor::from_vec(vec![0.5, 1.0, 1.0, 0.25], &[1, 2, 2]).unwrap();
        let m = explain(&mut model, &image, 0, &ExplainerConfig::default());
        // |w*x| = [1.0, 1.0, 0.0, 1.0] -> normalized all equal except pixel 2
        assert_eq!(m.at(&[1, 0]), 0.0);
        assert!((m.at(&[0, 0]) - 1.0).abs() < 1e-5);
        assert!((m.at(&[0, 1]) - 1.0).abs() < 1e-5);
        assert!((m.at(&[1, 1]) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_input_gives_zero_attribution() {
        let mut model = linear_model(&[1.0, 1.0, 1.0, 1.0]);
        let image = Tensor::zeros(&[1, 2, 2]);
        let m = explain(&mut model, &image, 0, &ExplainerConfig::default());
        // (x - baseline) = 0 everywhere -> all-zero matrix (normalized to 0)
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    fn is_deterministic() {
        let mut model = linear_model(&[1.0, 2.0, 3.0, 4.0]);
        let image = Tensor::full(&[1, 2, 2], 0.7);
        let a = explain(&mut model, &image, 0, &ExplainerConfig::default());
        let b = explain(&mut model, &image, 0, &ExplainerConfig::default());
        assert_eq!(a, b);
    }
}
