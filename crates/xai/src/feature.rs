//! Feature-matrix helpers shared by all techniques.

use remix_tensor::Tensor;

/// Collapses a `[C, H, W]` attribution tensor into a normalized `[H, W]`
/// feature matrix: absolute values are summed across channels and min–max
/// scaled into `[0, 1]`.
///
/// # Panics
///
/// Panics unless the input is rank 3.
pub fn aggregate_channels(attribution: &Tensor) -> Tensor {
    assert_eq!(attribution.rank(), 3, "attribution must be [C, H, W]");
    let (c, h, w) = (
        attribution.shape()[0],
        attribution.shape()[1],
        attribution.shape()[2],
    );
    let mut out = Tensor::zeros(&[h, w]);
    {
        let buf = out.data_mut();
        let data = attribution.data();
        for ci in 0..c {
            for i in 0..h * w {
                buf[i] += data[ci * h * w + i].abs();
            }
        }
    }
    out.normalize_minmax()
}

/// Returns a copy of `image` with the pixels at `pixel_indices` (flat `y*W+x`
/// spatial indices) replaced by `baseline` in every channel. Used by SHAP,
/// LIME and the faithfulness metric to "remove" features.
pub fn apply_pixel_mask(image: &Tensor, pixel_indices: &[usize], baseline: f32) -> Tensor {
    let (c, h, w) = (image.shape()[0], image.shape()[1], image.shape()[2]);
    let mut out = image.clone();
    let buf = out.data_mut();
    for &p in pixel_indices {
        debug_assert!(p < h * w);
        for ci in 0..c {
            buf[ci * h * w + p] = baseline;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums_channel_magnitudes() {
        let t =
            Tensor::from_vec(vec![1.0, -1.0, 0.0, 0.0, -2.0, 2.0, 0.0, 0.0], &[2, 2, 2]).unwrap();
        let m = aggregate_channels(&t);
        assert_eq!(m.shape(), &[2, 2]);
        // |1|+|−2| = 3 at (0,0); |−1|+|2| = 3 at (0,1); zeros elsewhere
        assert_eq!(m.data(), &[1.0, 1.0, 0.0, 0.0]); // after min-max normalize
    }

    #[test]
    fn aggregate_output_is_unit_range() {
        let t = Tensor::from_vec(vec![5.0, -3.0, 0.5, 0.0], &[1, 2, 2]).unwrap();
        let m = aggregate_channels(&t);
        assert_eq!(m.max().unwrap(), 1.0);
        assert_eq!(m.min().unwrap(), 0.0);
    }

    #[test]
    fn mask_replaces_all_channels() {
        let img = Tensor::ones(&[2, 2, 2]);
        let masked = apply_pixel_mask(&img, &[0, 3], 0.5);
        assert_eq!(masked.at(&[0, 0, 0]), 0.5);
        assert_eq!(masked.at(&[1, 0, 0]), 0.5);
        assert_eq!(masked.at(&[1, 1, 1]), 0.5);
        assert_eq!(masked.at(&[0, 0, 1]), 1.0); // untouched
    }

    #[test]
    fn empty_mask_is_identity() {
        let img = Tensor::ones(&[1, 3, 3]);
        assert_eq!(apply_pixel_mask(&img, &[], 0.0), img);
    }
}
