//! Counterfactual Explanations: the minimal input change that flips the
//! prediction (paper §II-C.3).
//!
//! The search is gradient-guided, as is standard for differentiable models:
//! each step moves a small set of the most influential pixels in the
//! direction that closes the gap between the predicted class and the
//! strongest alternative, stopping as soon as the label flips. The returned
//! feature matrix is the magnitude of the accumulated pixel delta — "the
//! minimal set of pixel alterations" of the paper's Fig. 2.

use crate::feature::aggregate_channels;
use crate::ExplainerConfig;
use remix_nn::Model;
use remix_tensor::Tensor;

/// CFE feature matrix for `(model, image, class)`.
///
/// The search steps are inherently sequential (each step's input depends on
/// the previous step's gradient), so only the per-step gradient *pair* can
/// batch: when the budget allows at least two inputs per forward, the class
/// and runner-up gradients share one batched forward/backward pass.
pub(crate) fn explain(
    model: &mut Model,
    image: &Tensor,
    class: usize,
    config: &ExplainerConfig,
) -> Tensor {
    let pair_batched = config.budget.effective_batch_size() >= 2;
    let mut current = image.clone();
    for _ in 0..config.budget.cfe_max_steps {
        let probs = model.predict_proba(&current);
        let pred = probs.argmax().expect("non-empty");
        if pred != class {
            break; // flipped
        }
        // strongest alternative class
        let mut runner = usize::MAX;
        let mut best = f32::NEG_INFINITY;
        for (k, &p) in probs.data().iter().enumerate() {
            if k != class && p > best {
                best = p;
                runner = k;
            }
        }
        // gradient of (logit_class − logit_runner): descending it closes the gap
        let (g_class, g_runner) = if pair_batched {
            let mut grads = model
                .input_gradient_batch(&[current.clone(), current.clone()], &[class, runner])
                .expect("inputs match the model spec");
            let g_runner = grads.pop().expect("two gradients");
            let g_class = grads.pop().expect("two gradients");
            (g_class, g_runner)
        } else {
            (
                model.input_gradient(&current, class),
                model.input_gradient(&current, runner),
            )
        };
        let gap_grad = g_class.sub(&g_runner).expect("same shape");
        // perturb only the top-k most influential pixels (sparse counterfactual)
        let mut magnitudes: Vec<(usize, f32)> = gap_grad
            .data()
            .iter()
            .enumerate()
            .map(|(i, &v)| (i, v.abs()))
            .collect();
        magnitudes.sort_by(|a, b| b.1.total_cmp(&a.1));
        let k = (gap_grad.len() / 10).max(1);
        let mut next = current.clone();
        {
            let buf = next.data_mut();
            for &(i, _) in magnitudes.iter().take(k) {
                buf[i] = (buf[i] - config.cfe_step * gap_grad.data()[i].signum()).clamp(0.0, 1.0);
            }
        }
        current = next;
    }
    let delta = current.sub(image).expect("same shape");
    aggregate_channels(&delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use remix_nn::layers::{Dense, Flatten};
    use remix_nn::{InputSpec, Layer, Sequential};

    /// Two-class linear model: class 0 looks at pixel 0, class 1 at pixel 3.
    fn two_pixel_model() -> Model {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Flatten::new());
        let mut dense = Dense::new(4, 2, &mut rng);
        dense.visit_params(&mut |p, _| {
            for v in p.data_mut() {
                *v = 0.0;
            }
            if p.len() == 8 {
                p.data_mut()[0] = 4.0; // class 0 <- pixel 0
                p.data_mut()[7] = 4.0; // class 1 <- pixel 3
            }
        });
        net.push(dense);
        Model::new(
            net,
            InputSpec {
                channels: 1,
                size: 2,
                num_classes: 2,
            },
        )
    }

    #[test]
    fn counterfactual_flips_the_label_by_editing_decisive_pixels() {
        let mut model = two_pixel_model();
        // pixel 0 bright, pixel 3 dim -> class 0
        let image = Tensor::from_vec(vec![0.9, 0.5, 0.5, 0.1], &[1, 2, 2]).unwrap();
        assert_eq!(model.predict(&image).0, 0);
        let m = explain(&mut model, &image, 0, &ExplainerConfig::default());
        // the delta should concentrate on the decisive pixels 0 and/or 3
        let decisive = m.at(&[0, 0]).max(m.at(&[1, 1]));
        let irrelevant = m.at(&[0, 1]).max(m.at(&[1, 0]));
        assert!(decisive > irrelevant, "decisive {decisive} vs {irrelevant}");
        assert!(m.sum() > 0.0, "no perturbation recorded");
    }

    #[test]
    fn already_misclassified_input_needs_no_change() {
        let mut model = two_pixel_model();
        let image = Tensor::from_vec(vec![0.1, 0.5, 0.5, 0.9], &[1, 2, 2]).unwrap();
        // model predicts class 1; asking to flip away from class 0 is a no-op
        let m = explain(&mut model, &image, 0, &ExplainerConfig::default());
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    fn is_deterministic() {
        let mut model = two_pixel_model();
        let image = Tensor::from_vec(vec![0.9, 0.5, 0.5, 0.1], &[1, 2, 2]).unwrap();
        let a = explain(&mut model, &image, 0, &ExplainerConfig::default());
        let b = explain(&mut model, &image, 0, &ExplainerConfig::default());
        assert_eq!(a, b);
    }
}
