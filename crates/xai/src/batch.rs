//! Shared batched-evaluation helpers for the XAI techniques.
//!
//! Every technique follows the same two-phase shape: **materialize** all
//! perturbed inputs up front (consuming the RNG in exactly the order the
//! per-sample implementation would), then **evaluate** them through the
//! model in batches of `XaiBudget::batch_size`. The model's batched paths
//! are bit-identical to its per-sample paths, so the feature matrices do not
//! depend on the batch size.

use remix_nn::Model;
use remix_tensor::Tensor;

/// Predicted-`class` probability for every input, evaluated `batch_size` at
/// a time.
pub(crate) fn class_probs(
    model: &mut Model,
    inputs: &[Tensor],
    class: usize,
    batch_size: usize,
) -> Vec<f32> {
    remix_trace::add(remix_trace::Counter::XaiPerturbations, inputs.len() as u64);
    let mut out = Vec::with_capacity(inputs.len());
    for chunk in inputs.chunks(batch_size.max(1)) {
        remix_trace::incr(remix_trace::Counter::XaiBatches);
        let probs = model
            .predict_proba_batch(chunk)
            .expect("perturbed inputs match the model spec");
        out.extend(probs.iter().map(|p| p.data()[class]));
    }
    out
}

/// Input gradient of the `class` logit for every input, evaluated
/// `batch_size` at a time.
pub(crate) fn class_gradients(
    model: &mut Model,
    inputs: &[Tensor],
    class: usize,
    batch_size: usize,
) -> Vec<Tensor> {
    let classes = vec![class; inputs.len()];
    class_gradients_multi(model, inputs, &classes, batch_size)
}

/// Input gradient of each input's own class logit, evaluated `batch_size` at
/// a time. The per-input gradient depends only on that input and its class
/// (each batch column backpropagates independently), so chunk composition —
/// including mixing inputs from different requests — cannot change any
/// result bit. That invariance is what lets the serving layer coalesce
/// concurrent requests into shared sweeps.
pub(crate) fn class_gradients_multi(
    model: &mut Model,
    inputs: &[Tensor],
    classes: &[usize],
    batch_size: usize,
) -> Vec<Tensor> {
    assert_eq!(inputs.len(), classes.len(), "one class per input");
    remix_trace::add(remix_trace::Counter::XaiPerturbations, inputs.len() as u64);
    let mut out = Vec::with_capacity(inputs.len());
    let chunk_len = batch_size.max(1);
    for (chunk, chunk_classes) in inputs.chunks(chunk_len).zip(classes.chunks(chunk_len)) {
        remix_trace::incr(remix_trace::Counter::XaiBatches);
        out.extend(
            model
                .input_gradient_batch(chunk, chunk_classes)
                .expect("perturbed inputs match the model spec"),
        );
    }
    out
}
