//! Shared batched-evaluation helpers for the XAI techniques.
//!
//! Every technique follows the same two-phase shape: **materialize** all
//! perturbed inputs up front (consuming the RNG in exactly the order the
//! per-sample implementation would), then **evaluate** them through the
//! model in batches of `XaiBudget::batch_size`. The model's batched paths
//! are bit-identical to its per-sample paths, so the feature matrices do not
//! depend on the batch size.

use remix_nn::Model;
use remix_tensor::Tensor;

/// Predicted-`class` probability for every input, evaluated `batch_size` at
/// a time.
pub(crate) fn class_probs(
    model: &mut Model,
    inputs: &[Tensor],
    class: usize,
    batch_size: usize,
) -> Vec<f32> {
    remix_trace::add(remix_trace::Counter::XaiPerturbations, inputs.len() as u64);
    let mut out = Vec::with_capacity(inputs.len());
    for chunk in inputs.chunks(batch_size.max(1)) {
        remix_trace::incr(remix_trace::Counter::XaiBatches);
        let probs = model
            .predict_proba_batch(chunk)
            .expect("perturbed inputs match the model spec");
        out.extend(probs.iter().map(|p| p.data()[class]));
    }
    out
}

/// Input gradient of the `class` logit for every input, evaluated
/// `batch_size` at a time.
pub(crate) fn class_gradients(
    model: &mut Model,
    inputs: &[Tensor],
    class: usize,
    batch_size: usize,
) -> Vec<Tensor> {
    remix_trace::add(remix_trace::Counter::XaiPerturbations, inputs.len() as u64);
    let mut out = Vec::with_capacity(inputs.len());
    for chunk in inputs.chunks(batch_size.max(1)) {
        remix_trace::incr(remix_trace::Counter::XaiBatches);
        let classes = vec![class; chunk.len()];
        out.extend(
            model
                .input_gradient_batch(chunk, &classes)
                .expect("perturbed inputs match the model spec"),
        );
    }
    out
}
