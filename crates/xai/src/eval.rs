//! XAI evaluation metrics used by RQ3 (paper §V-E).
//!
//! * [`faithfulness_correlation`] (Bhatt et al. 2021): correlation between
//!   the attribution mass of random feature subsets and the model-output drop
//!   when those subsets are masked. Higher = more faithful.
//! * [`relative_input_stability`] (Agarwal et al. 2022): the worst-case ratio
//!   between the relative change of the explanation and the relative change
//!   of the input, over small input perturbations. Lower = more stable; the
//!   paper plots its logarithm.

use crate::feature::apply_pixel_mask;
use crate::Explainer;
use rand::{seq::SliceRandom, Rng};
use remix_nn::Model;
use remix_tensor::Tensor;

/// Faithfulness correlation: Pearson correlation between Σ-attribution of a
/// random pixel subset and the probability drop when that subset is masked.
///
/// `subset_frac` controls subset size (the reference implementation uses a
/// small fixed cardinality; a fraction adapts to image size).
///
/// # Panics
///
/// Panics if `n_subsets < 2` or `subset_frac` is not in `(0, 1]`.
pub fn faithfulness_correlation(
    model: &mut Model,
    explainer: &Explainer,
    image: &Tensor,
    n_subsets: usize,
    subset_frac: f32,
    rng: &mut impl Rng,
) -> f32 {
    assert!(n_subsets >= 2, "need at least two subsets");
    assert!(subset_frac > 0.0 && subset_frac <= 1.0);
    let (h, w) = (image.shape()[1], image.shape()[2]);
    let n_pixels = h * w;
    let subset_len = ((n_pixels as f32 * subset_frac).round() as usize).clamp(1, n_pixels);
    let (class, base_prob) = model.predict(image);
    let attribution = explainer.explain(model, image, class, rng);
    let baseline = image.mean();
    let mut attr_sums = Vec::with_capacity(n_subsets);
    let mut drops = Vec::with_capacity(n_subsets);
    let mut pixels: Vec<usize> = (0..n_pixels).collect();
    for _ in 0..n_subsets {
        pixels.shuffle(rng);
        let subset = &pixels[..subset_len];
        let masked = apply_pixel_mask(image, subset, baseline);
        let prob = model.predict_proba(&masked).data()[class];
        drops.push(base_prob - prob);
        attr_sums.push(subset.iter().map(|&p| attribution.data()[p]).sum::<f32>());
    }
    pearson(&attr_sums, &drops)
}

/// Relative Input Stability: `max over perturbations of
/// ‖(e(x) − e(x')) / (e(x) + ε)‖₂ / max(‖(x − x') / (x + ε)‖₂, ε)`.
///
/// Lower values mean the explanation moves no faster than the input — the
/// stability the paper wants from an XAI technique under ReMIX.
///
/// # Panics
///
/// Panics if `n_perturbations` is zero.
pub fn relative_input_stability(
    model: &mut Model,
    explainer: &Explainer,
    image: &Tensor,
    n_perturbations: usize,
    noise_std: f32,
    rng: &mut impl Rng,
) -> f32 {
    assert!(n_perturbations > 0);
    const EPS: f32 = 1e-3;
    let (class, _) = model.predict(image);
    let base_expl = explainer.explain(model, image, class, rng);
    let mut worst = 0.0f32;
    for _ in 0..n_perturbations {
        let perturbed = image.with_gaussian_noise(noise_std, rng).clamp(0.0, 1.0);
        let expl = explainer.explain(model, &perturbed, class, rng);
        let expl_rel: f32 = base_expl
            .data()
            .iter()
            .zip(expl.data())
            .map(|(&a, &b)| {
                let d = (a - b) / (a.abs() + EPS);
                d * d
            })
            .sum::<f32>()
            .sqrt();
        let input_rel: f32 = image
            .data()
            .iter()
            .zip(perturbed.data())
            .map(|(&a, &b)| {
                let d = (a - b) / (a.abs() + EPS);
                d * d
            })
            .sum::<f32>()
            .sqrt();
        let ratio = expl_rel / input_rel.max(EPS);
        worst = worst.max(ratio);
    }
    worst
}

/// Pearson correlation coefficient; 0 when either series is constant.
fn pearson(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len() as f32;
    let (ma, mb) = (a.iter().sum::<f32>() / n, b.iter().sum::<f32>() / n);
    let cov: f32 = a.iter().zip(b).map(|(&x, &y)| (x - ma) * (y - mb)).sum();
    let (va, vb): (f32, f32) = (
        a.iter().map(|&x| (x - ma) * (x - ma)).sum(),
        b.iter().map(|&y| (y - mb) * (y - mb)).sum(),
    );
    if va <= f32::EPSILON || vb <= f32::EPSILON {
        return 0.0;
    }
    (cov / (va.sqrt() * vb.sqrt())).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XaiTechnique;
    use rand::{rngs::StdRng, SeedableRng};
    use remix_nn::layers::{Dense, Flatten};
    use remix_nn::{InputSpec, Layer, Sequential};

    fn linear_model() -> Model {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Flatten::new());
        let mut dense = Dense::new(16, 2, &mut rng);
        dense.visit_params(&mut |p, _| {
            for v in p.data_mut() {
                *v = 0.0;
            }
            if p.len() == 32 {
                // class 0 looks at the first row of the 4x4 image
                for x in 0..4 {
                    p.data_mut()[x] = 2.0;
                }
            }
        });
        net.push(dense);
        Model::new(
            net,
            InputSpec {
                channels: 1,
                size: 4,
                num_classes: 2,
            },
        )
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-5);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-5);
        assert_eq!(pearson(&[1.0, 1.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn faithful_gradient_explanation_correlates_positively() {
        let mut model = linear_model();
        // bright decisive top row over a dim background (a constant image
        // would make masking-to-mean a no-op)
        let mut image = Tensor::full(&[1, 4, 4], 0.2);
        for x in 0..4 {
            image.set(&[0, 0, x], 1.0);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let corr = faithfulness_correlation(
            &mut model,
            &Explainer::new(XaiTechnique::SmoothGrad),
            &image,
            24,
            0.25,
            &mut rng,
        );
        assert!(corr > 0.3, "faithfulness {corr}");
    }

    #[test]
    fn stability_is_finite_and_nonnegative() {
        let mut model = linear_model();
        let image = Tensor::full(&[1, 4, 4], 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let ris = relative_input_stability(
            &mut model,
            &Explainer::new(XaiTechnique::IntegratedGradients),
            &image,
            4,
            0.05,
            &mut rng,
        );
        assert!(ris.is_finite() && ris >= 0.0);
    }

    #[test]
    fn gradient_technique_is_stable_on_a_linear_model() {
        // a linear model's gradient never changes, so SG should be extremely
        // stable under input noise
        let mut model = linear_model();
        let image = Tensor::full(&[1, 4, 4], 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let ris = relative_input_stability(
            &mut model,
            &Explainer::new(XaiTechnique::SmoothGrad),
            &image,
            3,
            0.05,
            &mut rng,
        );
        assert!(ris < 5.0, "RIS {ris} unexpectedly high for a linear model");
    }
}
