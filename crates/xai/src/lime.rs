//! LIME (Ribeiro et al.): a local interpretable surrogate.
//!
//! Random coalitions of segments are masked out of the input; the model's
//! predicted-class probability on each perturbed input becomes the target of
//! a proximity-weighted ridge regression over the coalition indicator
//! vectors. The learned coefficients are the segment influences.

use crate::feature::apply_pixel_mask;
use crate::{batch, ExplainerConfig, SegmentGrid};
use rand::Rng;
use remix_nn::Model;
use remix_tensor::Tensor;

/// LIME feature matrix for `(model, image, class)`.
///
/// The coalitions were always drawn before any model call, so batching the
/// probability evaluations changes nothing about the RNG stream; the ridge
/// regression consumes the per-coalition probabilities in draw order.
pub(crate) fn explain(
    model: &mut Model,
    image: &Tensor,
    class: usize,
    config: &ExplainerConfig,
    rng: &mut impl Rng,
) -> Tensor {
    let (h, w) = (image.shape()[1], image.shape()[2]);
    let grid = SegmentGrid::new(h, w, config.segment.min(h).max(1));
    let t = grid.len();
    let n = config.budget.lime_samples.max(t + 2);
    // include the all-on coalition so the surrogate anchors at the input
    let mut coalitions: Vec<Vec<bool>> = vec![vec![true; t]];
    for _ in 1..n {
        coalitions.push((0..t).map(|_| rng.gen::<f32>() < 0.5).collect());
    }
    // materialize all perturbed inputs, then evaluate them in batches
    let inputs: Vec<Tensor> = coalitions
        .iter()
        .map(|mask| {
            let masked_pixels = grid.masked_pixels(mask);
            apply_pixel_mask(image, &masked_pixels, config.baseline)
        })
        .collect();
    let probs = batch::class_probs(model, &inputs, class, config.budget.effective_batch_size());
    // design matrix rows (coalition indicators), targets, proximity weights
    let mut rows: Vec<Vec<f32>> = Vec::with_capacity(n);
    let mut targets: Vec<f32> = Vec::with_capacity(n);
    let mut weights: Vec<f32> = Vec::with_capacity(n);
    for (mask, &prob) in coalitions.iter().zip(&probs) {
        let off_frac = mask.iter().filter(|&&m| !m).count() as f32 / t as f32;
        // exponential proximity kernel: nearer coalitions weigh more
        let weight = (-(off_frac * off_frac) / 0.25).exp();
        rows.push(mask.iter().map(|&m| if m { 1.0 } else { 0.0 }).collect());
        targets.push(prob);
        weights.push(weight);
    }
    let coeffs = ridge_regression(&rows, &targets, &weights, config.lime_ridge);
    // positive influence = segment supports the prediction
    let influence: Vec<f32> = coeffs.iter().map(|&c| c.max(0.0)).collect();
    grid.upsample(&influence).normalize_minmax()
}

/// Solves `(XᵀWX + λI) β = XᵀW y` by Gaussian elimination with partial
/// pivoting. The system is `T×T` with `T` = number of segments (small).
fn ridge_regression(rows: &[Vec<f32>], y: &[f32], w: &[f32], lambda: f32) -> Vec<f32> {
    let t = rows[0].len();
    let mut a = vec![vec![0.0f32; t]; t];
    let mut b = vec![0.0f32; t];
    for ((row, &yi), &wi) in rows.iter().zip(y).zip(w) {
        for i in 0..t {
            if row[i] == 0.0 {
                continue;
            }
            b[i] += wi * row[i] * yi;
            for j in 0..t {
                a[i][j] += wi * row[i] * row[j];
            }
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += lambda;
    }
    gaussian_solve(&mut a, &mut b)
}

fn gaussian_solve(a: &mut [Vec<f32>], b: &mut [f32]) -> Vec<f32> {
    let n = b.len();
    for col in 0..n {
        // partial pivot
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-9 {
            continue; // singular direction; ridge term should prevent this
        }
        let (pivot_rows, rest) = a.split_at_mut(col + 1);
        let pivot = &pivot_rows[col];
        for (offset, row_data) in rest.iter_mut().enumerate() {
            let row = col + 1 + offset;
            let factor = row_data[col] / diag;
            if factor == 0.0 {
                continue;
            }
            for (rk, &pk) in row_data[col..n].iter_mut().zip(&pivot[col..n]) {
                *rk -= factor * pk;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0f32; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-9 {
            0.0
        } else {
            acc / a[col][col]
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use remix_nn::layers::{Dense, Flatten};
    use remix_nn::{InputSpec, Layer, Sequential};

    #[test]
    fn ridge_recovers_known_linear_coefficients() {
        // y = 2·z0 + 0·z1 with unit weights; ridge pulls slightly toward 0
        let rows = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
        ];
        let y = vec![2.0, 0.0, 2.0, 0.0];
        let w = vec![1.0; 4];
        let beta = ridge_regression(&rows, &y, &w, 0.01);
        assert!((beta[0] - 2.0).abs() < 0.05, "beta0 {}", beta[0]);
        assert!(beta[1].abs() < 0.05, "beta1 {}", beta[1]);
    }

    #[test]
    fn gaussian_solver_handles_permuted_system() {
        let mut a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let mut b = vec![3.0, 5.0];
        let x = gaussian_solve(&mut a, &mut b);
        assert!((x[0] - 5.0).abs() < 1e-5);
        assert!((x[1] - 3.0).abs() < 1e-5);
    }

    fn segment_sensitive_model() -> Model {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Flatten::new());
        let mut dense = Dense::new(64, 2, &mut rng);
        dense.visit_params(&mut |p, _| {
            for v in p.data_mut() {
                *v = 0.0;
            }
            if p.len() == 128 {
                for y in 0..4 {
                    for x in 0..4 {
                        p.data_mut()[y * 8 + x] = 1.0;
                    }
                }
            }
        });
        net.push(dense);
        Model::new(
            net,
            InputSpec {
                channels: 1,
                size: 8,
                num_classes: 2,
            },
        )
    }

    #[test]
    fn lime_highlights_the_influential_segment() {
        let mut model = segment_sensitive_model();
        let image = Tensor::ones(&[1, 8, 8]);
        let mut rng = StdRng::seed_from_u64(2);
        let m = explain(&mut model, &image, 0, &ExplainerConfig::default(), &mut rng);
        assert_eq!(m.at(&[0, 0]), 1.0);
        assert!(m.at(&[6, 6]) < 0.3);
    }
}
