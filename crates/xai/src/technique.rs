use crate::{cfe, intgrad, lime, shap, smoothgrad};
use rand::Rng;
use remix_nn::Model;
use remix_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five XAI techniques shortlisted by the paper (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XaiTechnique {
    /// Smooth Gradients — gradients averaged over Gaussian-noised inputs.
    SmoothGrad,
    /// Integrated Gradients — gradients accumulated along a baseline path.
    IntegratedGradients,
    /// SHAP — permutation-sampling Shapley values over patch segments.
    Shap,
    /// LIME — ridge-regression surrogate over random segment masks.
    Lime,
    /// Counterfactual Explanations — minimal label-flipping perturbation.
    Counterfactual,
    /// NoiseGrad — gradients under model-weight noise (Discussion §runtime).
    NoiseGrad,
    /// FusionGrad — NoiseGrad + SmoothGrad combined (Discussion §runtime).
    FusionGrad,
}

impl XaiTechnique {
    /// The paper's five shortlisted techniques in Fig. 9 order.
    pub const ALL: [XaiTechnique; 5] = [
        XaiTechnique::Counterfactual,
        XaiTechnique::IntegratedGradients,
        XaiTechnique::Lime,
        XaiTechnique::SmoothGrad,
        XaiTechnique::Shap,
    ];

    /// The Discussion-section optimized variants (not part of Fig. 9).
    pub const OPTIMIZED: [XaiTechnique; 2] = [XaiTechnique::NoiseGrad, XaiTechnique::FusionGrad];

    /// Abbreviation used in the paper's figures.
    pub fn abbrev(&self) -> &'static str {
        match self {
            XaiTechnique::SmoothGrad => "SG",
            XaiTechnique::IntegratedGradients => "IG",
            XaiTechnique::Shap => "SHAP",
            XaiTechnique::Lime => "LIME",
            XaiTechnique::Counterfactual => "CFE",
            XaiTechnique::NoiseGrad => "NG",
            XaiTechnique::FusionGrad => "FG",
        }
    }

    /// Whether the technique requires a differentiable model (paper's
    /// *model-dependent* class).
    pub fn is_model_dependent(&self) -> bool {
        matches!(
            self,
            XaiTechnique::SmoothGrad
                | XaiTechnique::IntegratedGradients
                | XaiTechnique::NoiseGrad
                | XaiTechnique::FusionGrad
        )
    }
}

impl fmt::Display for XaiTechnique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Execution budget for the batched inference engine.
///
/// Every technique first materializes its perturbed inputs (noise draws,
/// path points, coalition masks), then evaluates them `batch_size` at a time
/// through the model's batched forward/backward sweeps. Results are
/// bit-identical for every batch size, so this knob trades memory for
/// throughput only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct XaiBudget {
    /// Number of perturbed inputs evaluated per batched model sweep.
    /// `1` reproduces the per-sample execution path exactly; `0` is treated
    /// as `1`.
    pub batch_size: usize,
}

impl Default for XaiBudget {
    fn default() -> Self {
        Self { batch_size: 32 }
    }
}

impl XaiBudget {
    /// Batch size clamped to at least one.
    pub fn effective_batch_size(&self) -> usize {
        self.batch_size.max(1)
    }
}

/// Tunable parameters for all techniques.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplainerConfig {
    /// SmoothGrad: number of noisy samples.
    pub sg_samples: usize,
    /// SmoothGrad: noise standard deviation (input range is `[0, 1]`).
    pub sg_sigma: f32,
    /// Integrated Gradients: number of interpolation steps.
    pub ig_steps: usize,
    /// SHAP: number of sampled permutations.
    pub shap_permutations: usize,
    /// Segment (patch) side for SHAP/LIME.
    pub segment: usize,
    /// LIME: number of random coalition samples.
    pub lime_samples: usize,
    /// LIME: ridge regularization strength.
    pub lime_ridge: f32,
    /// CFE: maximum perturbation steps before giving up.
    pub cfe_max_steps: usize,
    /// CFE: per-step perturbation magnitude.
    pub cfe_step: f32,
    /// Masking baseline value for "removed" features.
    pub baseline: f32,
    /// Batched-execution budget shared by all techniques.
    pub budget: XaiBudget,
}

impl Default for ExplainerConfig {
    fn default() -> Self {
        Self {
            sg_samples: 8,
            sg_sigma: 0.1,
            ig_steps: 12,
            shap_permutations: 4,
            segment: 4,
            lime_samples: 40,
            lime_ridge: 1.0,
            cfe_max_steps: 40,
            cfe_step: 0.08,
            baseline: 0.0,
            budget: XaiBudget::default(),
        }
    }
}

/// Applies an [`XaiTechnique`] to a model and input, yielding a `[H, W]`
/// feature matrix in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Explainer {
    /// The technique to apply.
    pub technique: XaiTechnique,
    /// Its parameters.
    pub config: ExplainerConfig,
}

impl Explainer {
    /// Creates an explainer with default parameters.
    pub fn new(technique: XaiTechnique) -> Self {
        Self {
            technique,
            config: ExplainerConfig::default(),
        }
    }

    /// Creates an explainer with explicit parameters.
    pub fn with_config(technique: XaiTechnique, config: ExplainerConfig) -> Self {
        Self { technique, config }
    }

    /// Extracts the feature matrix explaining why `model` assigns `class` to
    /// `image` (paper workflow step 1, "Feature Space Extraction").
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the model's input spec or `class` is
    /// out of range.
    pub fn explain(
        &self,
        model: &mut Model,
        image: &Tensor,
        class: usize,
        rng: &mut impl Rng,
    ) -> Tensor {
        assert!(class < model.num_classes(), "class out of range");
        let span = remix_trace::span(self.technique.abbrev());
        let matrix = self.dispatch(model, image, class, rng);
        // Zero when tracing is disabled, in which case record_duration is a
        // no-op too — the whole block is inert.
        let elapsed = span.finish();
        remix_trace::record_duration(self.technique.abbrev(), elapsed);
        matrix
    }

    /// Extracts feature matrices for several `(image, class)` items against
    /// the same model, with one independent `rng` per item.
    ///
    /// Every per-item result is bit-identical to calling [`Explainer::explain`]
    /// with that item's rng. For [`XaiTechnique::SmoothGrad`] the items'
    /// perturbations are coalesced into shared gradient sweeps — the serving
    /// layer's micro-batching lever — which only re-chunks the flattened
    /// inputs; the gradient math is chunk-invariant. Other techniques run
    /// item by item.
    ///
    /// # Panics
    ///
    /// Panics if `items` and `rngs` differ in length, or any item fails the
    /// [`Explainer::explain`] preconditions.
    pub fn explain_many<R: Rng>(
        &self,
        model: &mut Model,
        items: &[(&Tensor, usize)],
        rngs: &mut [R],
    ) -> Vec<Tensor> {
        assert_eq!(items.len(), rngs.len(), "one rng per item");
        if self.technique != XaiTechnique::SmoothGrad || items.len() <= 1 {
            return items
                .iter()
                .zip(rngs.iter_mut())
                .map(|((image, class), rng)| self.explain(model, image, *class, rng))
                .collect();
        }
        for (_, class) in items {
            assert!(*class < model.num_classes(), "class out of range");
        }
        let span = remix_trace::span(self.technique.abbrev());
        let matrices = smoothgrad::explain_coalesced(model, items, rngs, &self.config);
        // One histogram sample for the whole coalesced sweep: the span is the
        // unit of model work, matching the per-call samples of `explain`.
        let elapsed = span.finish();
        remix_trace::record_duration(self.technique.abbrev(), elapsed);
        matrices
    }

    fn dispatch(
        &self,
        model: &mut Model,
        image: &Tensor,
        class: usize,
        rng: &mut impl Rng,
    ) -> Tensor {
        match self.technique {
            XaiTechnique::SmoothGrad => smoothgrad::explain(model, image, class, &self.config, rng),
            XaiTechnique::IntegratedGradients => {
                intgrad::explain(model, image, class, &self.config)
            }
            XaiTechnique::Shap => shap::explain(model, image, class, &self.config, rng),
            XaiTechnique::Lime => lime::explain(model, image, class, &self.config, rng),
            XaiTechnique::Counterfactual => cfe::explain(model, image, class, &self.config),
            XaiTechnique::NoiseGrad => {
                crate::noisegrad::noisegrad(model, image, class, &self.config, rng)
            }
            XaiTechnique::FusionGrad => {
                crate::noisegrad::fusiongrad(model, image, class, &self.config, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use remix_nn::{zoo, Arch, InputSpec};

    #[test]
    fn all_techniques_produce_unit_range_matrices() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = InputSpec {
            channels: 1,
            size: 8,
            num_classes: 3,
        };
        let mut model = Model::new(zoo::build(Arch::ConvNet, spec, &mut rng), spec);
        let image = Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.0, &mut rng);
        for technique in XaiTechnique::ALL.into_iter().chain(XaiTechnique::OPTIMIZED) {
            let m = Explainer::new(technique).explain(&mut model, &image, 1, &mut rng);
            assert_eq!(m.shape(), &[8, 8], "{technique}");
            assert!(!m.has_non_finite(), "{technique} NaN");
            let max = m.max().unwrap();
            let min = m.min().unwrap();
            assert!(
                (0.0..=1.0).contains(&min) && max <= 1.0,
                "{technique} range"
            );
        }
    }

    #[test]
    fn explain_many_is_bit_identical_to_per_item_explain() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = InputSpec {
            channels: 1,
            size: 8,
            num_classes: 3,
        };
        let mut model = Model::new(zoo::build(Arch::ConvNet, spec, &mut rng), spec);
        let images: Vec<Tensor> = (0..5)
            .map(|_| Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.0, &mut rng))
            .collect();
        let items: Vec<(&Tensor, usize)> =
            images.iter().enumerate().map(|(i, t)| (t, i % 3)).collect();
        for technique in [XaiTechnique::SmoothGrad, XaiTechnique::IntegratedGradients] {
            // Small batch size so the coalesced sweep chunks across item
            // boundaries — the case the bit-identity claim is about.
            let explainer = Explainer::with_config(
                technique,
                ExplainerConfig {
                    budget: XaiBudget { batch_size: 5 },
                    ..ExplainerConfig::default()
                },
            );
            let mut rngs: Vec<StdRng> = (0..items.len())
                .map(|i| StdRng::seed_from_u64(100 + i as u64))
                .collect();
            let many = explainer.explain_many(&mut model, &items, &mut rngs);
            for (i, (image, class)) in items.iter().enumerate() {
                let mut solo_rng = StdRng::seed_from_u64(100 + i as u64);
                let solo = explainer.explain(&mut model, image, *class, &mut solo_rng);
                assert_eq!(many[i], solo, "{technique} item {i}");
            }
        }
    }

    #[test]
    fn classification_of_techniques_matches_paper() {
        assert!(XaiTechnique::SmoothGrad.is_model_dependent());
        assert!(XaiTechnique::IntegratedGradients.is_model_dependent());
        assert!(!XaiTechnique::Shap.is_model_dependent());
        assert!(!XaiTechnique::Lime.is_model_dependent());
        assert!(!XaiTechnique::Counterfactual.is_model_dependent());
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn rejects_bad_class() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = InputSpec {
            channels: 1,
            size: 8,
            num_classes: 2,
        };
        let mut model = Model::new(zoo::build(Arch::ConvNet, spec, &mut rng), spec);
        Explainer::new(XaiTechnique::SmoothGrad).explain(
            &mut model,
            &Tensor::zeros(&[1, 8, 8]),
            5,
            &mut rng,
        );
    }
}
