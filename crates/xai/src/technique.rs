use crate::{cfe, intgrad, lime, shap, smoothgrad};
use rand::Rng;
use remix_nn::Model;
use remix_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five XAI techniques shortlisted by the paper (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XaiTechnique {
    /// Smooth Gradients — gradients averaged over Gaussian-noised inputs.
    SmoothGrad,
    /// Integrated Gradients — gradients accumulated along a baseline path.
    IntegratedGradients,
    /// SHAP — permutation-sampling Shapley values over patch segments.
    Shap,
    /// LIME — ridge-regression surrogate over random segment masks.
    Lime,
    /// Counterfactual Explanations — minimal label-flipping perturbation.
    Counterfactual,
    /// NoiseGrad — gradients under model-weight noise (Discussion §runtime).
    NoiseGrad,
    /// FusionGrad — NoiseGrad + SmoothGrad combined (Discussion §runtime).
    FusionGrad,
}

impl XaiTechnique {
    /// The paper's five shortlisted techniques in Fig. 9 order.
    pub const ALL: [XaiTechnique; 5] = [
        XaiTechnique::Counterfactual,
        XaiTechnique::IntegratedGradients,
        XaiTechnique::Lime,
        XaiTechnique::SmoothGrad,
        XaiTechnique::Shap,
    ];

    /// The Discussion-section optimized variants (not part of Fig. 9).
    pub const OPTIMIZED: [XaiTechnique; 2] = [XaiTechnique::NoiseGrad, XaiTechnique::FusionGrad];

    /// Abbreviation used in the paper's figures.
    pub fn abbrev(&self) -> &'static str {
        match self {
            XaiTechnique::SmoothGrad => "SG",
            XaiTechnique::IntegratedGradients => "IG",
            XaiTechnique::Shap => "SHAP",
            XaiTechnique::Lime => "LIME",
            XaiTechnique::Counterfactual => "CFE",
            XaiTechnique::NoiseGrad => "NG",
            XaiTechnique::FusionGrad => "FG",
        }
    }

    /// Whether the technique requires a differentiable model (paper's
    /// *model-dependent* class).
    pub fn is_model_dependent(&self) -> bool {
        matches!(
            self,
            XaiTechnique::SmoothGrad
                | XaiTechnique::IntegratedGradients
                | XaiTechnique::NoiseGrad
                | XaiTechnique::FusionGrad
        )
    }
}

impl fmt::Display for XaiTechnique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// One rung of the fixed XAI budget ladder.
///
/// The triage scheduler (`remix-core`) maps each disagreement to a level;
/// [`XaiBudget::scale`] derives the level's per-technique counts from the
/// `Full` budget with fixed integer arithmetic, so the same input always
/// receives the same perturbation stream — no wall-clock enters the verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum XaiLevel {
    /// No XAI at all: the verdict is the deterministic unweighted majority
    /// vote over the constituent predictions.
    Skip,
    /// A quarter of the full perturbation counts (rounded up, at least one).
    Light,
    /// Half of the full perturbation counts (rounded up, at least one).
    Standard,
    /// The full budget — bit-identical to the unscheduled pipeline.
    Full,
}

impl XaiLevel {
    /// The ladder from cheapest to most expensive.
    pub const LADDER: [XaiLevel; 4] = [
        XaiLevel::Skip,
        XaiLevel::Light,
        XaiLevel::Standard,
        XaiLevel::Full,
    ];

    /// Wire/label name (`"skip"`, `"light"`, `"standard"`, `"full"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            XaiLevel::Skip => "skip",
            XaiLevel::Light => "light",
            XaiLevel::Standard => "standard",
            XaiLevel::Full => "full",
        }
    }

    /// Parses a wire/label name back into a level.
    pub fn parse(name: &str) -> Option<XaiLevel> {
        XaiLevel::LADDER.into_iter().find(|l| l.as_str() == name)
    }

    /// The next cheaper rung (`Skip` has none).
    pub fn downgrade(&self) -> Option<XaiLevel> {
        match self {
            XaiLevel::Skip => None,
            XaiLevel::Light => Some(XaiLevel::Skip),
            XaiLevel::Standard => Some(XaiLevel::Light),
            XaiLevel::Full => Some(XaiLevel::Standard),
        }
    }

    /// Numerator of the fixed count fraction this level applies (over 4).
    fn quarters(&self) -> usize {
        match self {
            XaiLevel::Skip => 0,
            XaiLevel::Light => 1,
            XaiLevel::Standard => 2,
            XaiLevel::Full => 4,
        }
    }
}

impl fmt::Display for XaiLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Execution budget for the batched inference engine: the per-technique
/// perturbation/path/coalition counts plus the batched sweep width.
///
/// The counts are what the budget ladder scales ([`XaiBudget::scale`]);
/// `batch_size` is a pure execution-strategy knob — every technique first
/// materializes its perturbed inputs (noise draws, path points, coalition
/// masks), then evaluates them `batch_size` at a time through the model's
/// batched forward/backward sweeps, bit-identically for every batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct XaiBudget {
    /// Number of perturbed inputs evaluated per batched model sweep.
    /// `1` reproduces the per-sample execution path exactly; `0` is treated
    /// as `1`. Not scaled by the ladder.
    pub batch_size: usize,
    /// SmoothGrad / NoiseGrad / FusionGrad: number of noisy samples.
    pub sg_samples: usize,
    /// Integrated Gradients: number of interpolation path points.
    pub ig_steps: usize,
    /// SHAP: number of sampled coalition permutations.
    pub shap_permutations: usize,
    /// LIME: number of random coalition samples.
    pub lime_samples: usize,
    /// CFE: maximum gradient-pair perturbation steps before giving up.
    pub cfe_max_steps: usize,
}

impl Default for XaiBudget {
    fn default() -> Self {
        Self {
            batch_size: 32,
            sg_samples: 8,
            ig_steps: 12,
            shap_permutations: 4,
            lime_samples: 40,
            cfe_max_steps: 40,
        }
    }
}

impl XaiBudget {
    /// Batch size clamped to at least one.
    pub fn effective_batch_size(&self) -> usize {
        self.batch_size.max(1)
    }

    /// Derives the budget for one ladder level with fixed integer
    /// arithmetic: `Full` returns `self` unchanged (the bit-identity
    /// anchor), `Standard`/`Light` keep half/a quarter of every count
    /// (rounded up, at least one), and `Skip` zeroes them — the pipeline
    /// never invokes an explainer at `Skip`, so the zeros only matter to the
    /// cost model. `batch_size` is never scaled.
    pub fn scale(&self, level: XaiLevel) -> XaiBudget {
        if level == XaiLevel::Full {
            return *self;
        }
        let q = level.quarters();
        let part = |count: usize| {
            if q == 0 {
                0
            } else {
                (count * q).div_ceil(4).max(1)
            }
        };
        XaiBudget {
            batch_size: self.batch_size,
            sg_samples: part(self.sg_samples),
            ig_steps: part(self.ig_steps),
            shap_permutations: part(self.shap_permutations),
            lime_samples: part(self.lime_samples),
            cfe_max_steps: part(self.cfe_max_steps),
        }
    }

    /// Coarse cost of one model's pass under `technique`, in perturbation
    /// units (model sweeps). Drives the serving layer's latency-budget
    /// downgrades; the ordering across levels is what matters, not the
    /// absolute calibration.
    pub fn sweep_units(&self, technique: XaiTechnique) -> u64 {
        (match technique {
            XaiTechnique::SmoothGrad | XaiTechnique::NoiseGrad => self.sg_samples,
            // FusionGrad runs NoiseGrad's model-noise loop and SmoothGrad's
            // input-noise loop per noisy model.
            XaiTechnique::FusionGrad => self.sg_samples * (1 + self.sg_samples),
            XaiTechnique::IntegratedGradients => self.ig_steps,
            XaiTechnique::Shap => self.shap_permutations,
            XaiTechnique::Lime => self.lime_samples,
            XaiTechnique::Counterfactual => self.cfe_max_steps,
        }) as u64
    }
}

/// Tunable parameters for all techniques. The perturbation *counts* live in
/// [`XaiBudget`] (so the budget ladder can scale them); only the shape/noise
/// parameters that never change across ladder levels live here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplainerConfig {
    /// SmoothGrad: noise standard deviation (input range is `[0, 1]`).
    pub sg_sigma: f32,
    /// Segment (patch) side for SHAP/LIME.
    pub segment: usize,
    /// LIME: ridge regularization strength.
    pub lime_ridge: f32,
    /// CFE: per-step perturbation magnitude.
    pub cfe_step: f32,
    /// Masking baseline value for "removed" features.
    pub baseline: f32,
    /// Perturbation counts and batched-execution budget shared by all
    /// techniques.
    pub budget: XaiBudget,
}

impl Default for ExplainerConfig {
    fn default() -> Self {
        Self {
            sg_sigma: 0.1,
            segment: 4,
            lime_ridge: 1.0,
            cfe_step: 0.08,
            baseline: 0.0,
            budget: XaiBudget::default(),
        }
    }
}

impl ExplainerConfig {
    /// The same config with the budget counts scaled to `level`
    /// ([`XaiBudget::scale`]); `Full` is the identity.
    pub fn at_level(&self, level: XaiLevel) -> ExplainerConfig {
        ExplainerConfig {
            budget: self.budget.scale(level),
            ..*self
        }
    }
}

/// Applies an [`XaiTechnique`] to a model and input, yielding a `[H, W]`
/// feature matrix in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Explainer {
    /// The technique to apply.
    pub technique: XaiTechnique,
    /// Its parameters.
    pub config: ExplainerConfig,
}

impl Explainer {
    /// Creates an explainer with default parameters.
    pub fn new(technique: XaiTechnique) -> Self {
        Self {
            technique,
            config: ExplainerConfig::default(),
        }
    }

    /// Creates an explainer with explicit parameters.
    pub fn with_config(technique: XaiTechnique, config: ExplainerConfig) -> Self {
        Self { technique, config }
    }

    /// The same explainer with its budget counts scaled to `level`; `Full`
    /// returns `self` bit-identically.
    pub fn at_level(&self, level: XaiLevel) -> Explainer {
        Explainer {
            technique: self.technique,
            config: self.config.at_level(level),
        }
    }

    /// Coarse per-model cost of this explainer in perturbation units at
    /// `level` (see [`XaiBudget::sweep_units`]).
    pub fn sweep_units_at(&self, level: XaiLevel) -> u64 {
        self.config.budget.scale(level).sweep_units(self.technique)
    }

    /// Extracts the feature matrix explaining why `model` assigns `class` to
    /// `image` (paper workflow step 1, "Feature Space Extraction").
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the model's input spec or `class` is
    /// out of range.
    pub fn explain(
        &self,
        model: &mut Model,
        image: &Tensor,
        class: usize,
        rng: &mut impl Rng,
    ) -> Tensor {
        assert!(class < model.num_classes(), "class out of range");
        let span = remix_trace::span(self.technique.abbrev());
        let matrix = self.dispatch(model, image, class, rng);
        // Zero when tracing is disabled, in which case record_duration is a
        // no-op too — the whole block is inert.
        let elapsed = span.finish();
        remix_trace::record_duration(self.technique.abbrev(), elapsed);
        matrix
    }

    /// Extracts feature matrices for several `(image, class)` items against
    /// the same model, with one independent `rng` per item.
    ///
    /// Every per-item result is bit-identical to calling [`Explainer::explain`]
    /// with that item's rng. For [`XaiTechnique::SmoothGrad`] the items'
    /// perturbations are coalesced into shared gradient sweeps — the serving
    /// layer's micro-batching lever — which only re-chunks the flattened
    /// inputs; the gradient math is chunk-invariant. Other techniques run
    /// item by item.
    ///
    /// # Panics
    ///
    /// Panics if `items` and `rngs` differ in length, or any item fails the
    /// [`Explainer::explain`] preconditions.
    pub fn explain_many<R: Rng>(
        &self,
        model: &mut Model,
        items: &[(&Tensor, usize)],
        rngs: &mut [R],
    ) -> Vec<Tensor> {
        assert_eq!(items.len(), rngs.len(), "one rng per item");
        if self.technique != XaiTechnique::SmoothGrad || items.len() <= 1 {
            return items
                .iter()
                .zip(rngs.iter_mut())
                .map(|((image, class), rng)| self.explain(model, image, *class, rng))
                .collect();
        }
        for (_, class) in items {
            assert!(*class < model.num_classes(), "class out of range");
        }
        let span = remix_trace::span(self.technique.abbrev());
        let matrices = smoothgrad::explain_coalesced(model, items, rngs, &self.config);
        // One histogram sample for the whole coalesced sweep: the span is the
        // unit of model work, matching the per-call samples of `explain`.
        let elapsed = span.finish();
        remix_trace::record_duration(self.technique.abbrev(), elapsed);
        matrices
    }

    fn dispatch(
        &self,
        model: &mut Model,
        image: &Tensor,
        class: usize,
        rng: &mut impl Rng,
    ) -> Tensor {
        match self.technique {
            XaiTechnique::SmoothGrad => smoothgrad::explain(model, image, class, &self.config, rng),
            XaiTechnique::IntegratedGradients => {
                intgrad::explain(model, image, class, &self.config)
            }
            XaiTechnique::Shap => shap::explain(model, image, class, &self.config, rng),
            XaiTechnique::Lime => lime::explain(model, image, class, &self.config, rng),
            XaiTechnique::Counterfactual => cfe::explain(model, image, class, &self.config),
            XaiTechnique::NoiseGrad => {
                crate::noisegrad::noisegrad(model, image, class, &self.config, rng)
            }
            XaiTechnique::FusionGrad => {
                crate::noisegrad::fusiongrad(model, image, class, &self.config, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use remix_nn::{zoo, Arch, InputSpec};

    #[test]
    fn all_techniques_produce_unit_range_matrices() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = InputSpec {
            channels: 1,
            size: 8,
            num_classes: 3,
        };
        let mut model = Model::new(zoo::build(Arch::ConvNet, spec, &mut rng), spec);
        let image = Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.0, &mut rng);
        for technique in XaiTechnique::ALL.into_iter().chain(XaiTechnique::OPTIMIZED) {
            let m = Explainer::new(technique).explain(&mut model, &image, 1, &mut rng);
            assert_eq!(m.shape(), &[8, 8], "{technique}");
            assert!(!m.has_non_finite(), "{technique} NaN");
            let max = m.max().unwrap();
            let min = m.min().unwrap();
            assert!(
                (0.0..=1.0).contains(&min) && max <= 1.0,
                "{technique} range"
            );
        }
    }

    #[test]
    fn explain_many_is_bit_identical_to_per_item_explain() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = InputSpec {
            channels: 1,
            size: 8,
            num_classes: 3,
        };
        let mut model = Model::new(zoo::build(Arch::ConvNet, spec, &mut rng), spec);
        let images: Vec<Tensor> = (0..5)
            .map(|_| Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.0, &mut rng))
            .collect();
        let items: Vec<(&Tensor, usize)> =
            images.iter().enumerate().map(|(i, t)| (t, i % 3)).collect();
        for technique in [XaiTechnique::SmoothGrad, XaiTechnique::IntegratedGradients] {
            // Small batch size so the coalesced sweep chunks across item
            // boundaries — the case the bit-identity claim is about.
            let explainer = Explainer::with_config(
                technique,
                ExplainerConfig {
                    budget: XaiBudget {
                        batch_size: 5,
                        ..XaiBudget::default()
                    },
                    ..ExplainerConfig::default()
                },
            );
            let mut rngs: Vec<StdRng> = (0..items.len())
                .map(|i| StdRng::seed_from_u64(100 + i as u64))
                .collect();
            let many = explainer.explain_many(&mut model, &items, &mut rngs);
            for (i, (image, class)) in items.iter().enumerate() {
                let mut solo_rng = StdRng::seed_from_u64(100 + i as u64);
                let solo = explainer.explain(&mut model, image, *class, &mut solo_rng);
                assert_eq!(many[i], solo, "{technique} item {i}");
            }
        }
    }

    #[test]
    fn classification_of_techniques_matches_paper() {
        assert!(XaiTechnique::SmoothGrad.is_model_dependent());
        assert!(XaiTechnique::IntegratedGradients.is_model_dependent());
        assert!(!XaiTechnique::Shap.is_model_dependent());
        assert!(!XaiTechnique::Lime.is_model_dependent());
        assert!(!XaiTechnique::Counterfactual.is_model_dependent());
    }

    #[test]
    fn full_scale_is_identity_and_lower_levels_shrink_monotonically() {
        let budget = XaiBudget::default();
        assert_eq!(budget.scale(XaiLevel::Full), budget);
        for technique in XaiTechnique::ALL.into_iter().chain(XaiTechnique::OPTIMIZED) {
            let units: Vec<u64> = XaiLevel::LADDER
                .iter()
                .map(|&l| budget.scale(l).sweep_units(technique))
                .collect();
            assert!(
                units.windows(2).all(|w| w[0] <= w[1]),
                "{technique}: {units:?} not monotone over the ladder"
            );
            assert_eq!(units[0], 0, "{technique}: Skip must cost nothing");
            assert!(units[3] > 0, "{technique}: Full must cost something");
        }
        // Scaled counts never hit zero above Skip, even from count 1.
        let tiny = XaiBudget {
            sg_samples: 1,
            ig_steps: 1,
            shap_permutations: 1,
            lime_samples: 1,
            cfe_max_steps: 1,
            batch_size: 1,
        };
        let light = tiny.scale(XaiLevel::Light);
        assert_eq!(light.sg_samples, 1);
        assert_eq!(light.cfe_max_steps, 1);
    }

    #[test]
    fn ladder_names_round_trip_and_downgrade_walks_to_skip() {
        for level in XaiLevel::LADDER {
            assert_eq!(XaiLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(XaiLevel::parse("bogus"), None);
        let mut level = XaiLevel::Full;
        let mut hops = 0;
        while let Some(next) = level.downgrade() {
            assert!(next < level);
            level = next;
            hops += 1;
        }
        assert_eq!(level, XaiLevel::Skip);
        assert_eq!(hops, 3);
    }

    #[test]
    fn at_level_standard_halves_the_sampled_counts() {
        let explainer = Explainer::new(XaiTechnique::SmoothGrad);
        let std = explainer.at_level(XaiLevel::Standard);
        assert_eq!(std.config.budget.sg_samples, 4);
        assert_eq!(std.config.budget.lime_samples, 20);
        assert_eq!(std.config.budget.batch_size, 32, "batch_size never scales");
        assert_eq!(std.config.sg_sigma, explainer.config.sg_sigma);
        assert_eq!(
            explainer.at_level(XaiLevel::Full).config,
            explainer.config,
            "Full must be the identity"
        );
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn rejects_bad_class() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = InputSpec {
            channels: 1,
            size: 8,
            num_classes: 2,
        };
        let mut model = Model::new(zoo::build(Arch::ConvNet, spec, &mut rng), spec);
        Explainer::new(XaiTechnique::SmoothGrad).explain(
            &mut model,
            &Tensor::zeros(&[1, 8, 8]),
            5,
            &mut rng,
        );
    }
}
