//! NoiseGrad and FusionGrad (Bykov et al.), the optimized SmoothGrad
//! variants the paper's Discussion cites as runtime optimizations
//! ("Optimizations to Runtime Overhead"): instead of (only) perturbing the
//! input, these perturb the *model weights*.
//!
//! * **NoiseGrad** — gradients averaged over multiplicative Gaussian noise on
//!   the parameters;
//! * **FusionGrad** — NoiseGrad and SmoothGrad combined (noise on both
//!   weights and inputs).
//!
//! The paper notes such techniques trade faithfulness for speed; the
//! `ablations` binary and `remix-xai`'s evaluation metrics let that tradeoff
//! be measured here.
//!
//! Unlike the input-perturbation techniques, NoiseGrad and FusionGrad stay
//! per-sample under the batched inference engine: each sample evaluates a
//! *differently-noised model*, and a batched forward shares one set of
//! weights across the whole batch. They still profit from the
//! inference-mode input-gradient path (no parameter-gradient caches).

use crate::feature::aggregate_channels;
use crate::ExplainerConfig;
use rand::Rng;
use remix_nn::{Layer, Model};
use remix_tensor::Tensor;

/// Applies multiplicative Gaussian noise `w ← w·(1+ε)` to every parameter,
/// returning the noise factors so [`restore_params`] can undo it exactly.
fn perturb_params(model: &mut Model, std: f32, rng: &mut impl Rng) -> Vec<Tensor> {
    let mut noises = Vec::new();
    model.net_mut().visit_params(&mut |param, _| {
        let noise = Tensor::randn(param.shape(), std, rng);
        for (p, &n) in param.data_mut().iter_mut().zip(noise.data()) {
            *p *= 1.0 + n;
        }
        noises.push(noise);
    });
    noises
}

/// Undoes [`perturb_params`] by dividing the stored factors back out.
fn restore_params(model: &mut Model, noises: &[Tensor]) {
    let mut idx = 0;
    model.net_mut().visit_params(&mut |param, _| {
        let noise = &noises[idx];
        for (p, &n) in param.data_mut().iter_mut().zip(noise.data()) {
            *p /= 1.0 + n;
        }
        idx += 1;
    });
}

/// NoiseGrad feature matrix: `n_samples` input gradients under weight noise.
///
/// The model is restored bit-for-bit (multiplicative noise divided back out)
/// after each sample.
pub fn noisegrad(
    model: &mut Model,
    image: &Tensor,
    class: usize,
    config: &ExplainerConfig,
    rng: &mut impl Rng,
) -> Tensor {
    let mut acc = Tensor::zeros(image.shape());
    for _ in 0..config.budget.sg_samples.max(1) {
        let noises = perturb_params(model, config.sg_sigma * 0.5, rng);
        let grad = model.input_gradient(image, class);
        restore_params(model, &noises);
        acc.add_assign(&grad.abs()).expect("gradient shape");
    }
    aggregate_channels(&acc)
}

/// FusionGrad feature matrix: weight noise *and* input noise per sample.
pub fn fusiongrad(
    model: &mut Model,
    image: &Tensor,
    class: usize,
    config: &ExplainerConfig,
    rng: &mut impl Rng,
) -> Tensor {
    let mut acc = Tensor::zeros(image.shape());
    for _ in 0..config.budget.sg_samples.max(1) {
        let noises = perturb_params(model, config.sg_sigma * 0.5, rng);
        let noisy_input = image.with_gaussian_noise(config.sg_sigma, rng);
        let grad = model.input_gradient(&noisy_input, class);
        restore_params(model, &noises);
        acc.add_assign(&grad.abs()).expect("gradient shape");
    }
    aggregate_channels(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use remix_nn::layers::{Dense, Flatten, Relu};
    use remix_nn::{InputSpec, Sequential};

    fn model() -> Model {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Flatten::new());
        net.push(Dense::new(16, 8, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(8, 3, &mut rng));
        Model::new(
            net,
            InputSpec {
                channels: 1,
                size: 4,
                num_classes: 3,
            },
        )
    }

    #[test]
    fn perturb_restore_roundtrips_exactly() {
        let mut m = model();
        let img = Tensor::full(&[1, 4, 4], 0.3);
        let before = m.logits(&img);
        let mut rng = StdRng::seed_from_u64(2);
        let noises = perturb_params(&mut m, 0.1, &mut rng);
        let during = m.logits(&img);
        assert_ne!(before, during, "perturbation had no effect");
        restore_params(&mut m, &noises);
        let after = m.logits(&img);
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn noisegrad_and_fusiongrad_produce_valid_matrices() {
        let mut m = model();
        let img = Tensor::rand_uniform(&[1, 4, 4], 0.0, 1.0, &mut StdRng::seed_from_u64(3));
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = ExplainerConfig::default();
        for f in [noisegrad, fusiongrad] {
            let matrix = f(&mut m, &img, 0, &cfg, &mut rng);
            assert_eq!(matrix.shape(), &[4, 4]);
            assert!(!matrix.has_non_finite());
            assert!(matrix.max().unwrap() <= 1.0);
        }
    }

    #[test]
    fn noisegrad_resembles_plain_gradient_on_average() {
        let mut m = model();
        let img = Tensor::rand_uniform(&[1, 4, 4], 0.0, 1.0, &mut StdRng::seed_from_u64(5));
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = ExplainerConfig {
            budget: crate::XaiBudget {
                sg_samples: 16,
                ..crate::XaiBudget::default()
            },
            sg_sigma: 0.05,
            ..ExplainerConfig::default()
        };
        let ng = noisegrad(&mut m, &img, 0, &cfg, &mut rng);
        let plain = aggregate_channels(&m.input_gradient(&img, 0).abs());
        // small weight noise: the maps should correlate strongly
        let d = ng
            .data()
            .iter()
            .zip(plain.data())
            .map(|(&a, &b)| (a - b).abs())
            .sum::<f32>()
            / ng.len() as f32;
        assert!(d < 0.4, "NoiseGrad diverged from the plain gradient ({d})");
    }
}
