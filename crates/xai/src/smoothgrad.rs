//! Smooth Gradients (Smilkov et al.): input gradients averaged over
//! Gaussian-noised copies of the input, which suppresses gradient noise and
//! sharpens the saliency map relative to a single gradient.

use crate::feature::aggregate_channels;
use crate::{batch, ExplainerConfig};
use rand::Rng;
use remix_nn::Model;
use remix_tensor::Tensor;

/// SmoothGrad feature matrix for `(model, image, class)`.
///
/// All noise draws are materialized before any model evaluation; the
/// gradient passes consume no RNG, so the noise stream — and therefore the
/// result — is bit-identical to the historical draw-evaluate-draw loop, for
/// every batch size.
pub(crate) fn explain(
    model: &mut Model,
    image: &Tensor,
    class: usize,
    config: &ExplainerConfig,
    rng: &mut impl Rng,
) -> Tensor {
    let noisy = materialize(image, config, rng);
    let grads = batch::class_gradients(model, &noisy, class, config.budget.effective_batch_size());
    reduce(image, &grads)
}

/// SmoothGrad feature matrices for several `(image, class)` items in one
/// coalesced set of gradient sweeps.
///
/// Each item's noise is drawn from its own `rng` in item order, and each
/// noisy input backpropagates its own item's class, so every per-item result
/// is bit-identical to calling [`explain`] with that rng — the coalescing
/// only changes how the flattened inputs are chunked across sweeps, which
/// the gradient math is invariant to. This is the serving layer's hot path:
/// with `sg_samples = 8` and `batch_size = 32`, four concurrent requests
/// share one full-width sweep instead of paying four fixed sweep overheads.
pub(crate) fn explain_coalesced<R: Rng>(
    model: &mut Model,
    items: &[(&Tensor, usize)],
    rngs: &mut [R],
    config: &ExplainerConfig,
) -> Vec<Tensor> {
    assert_eq!(items.len(), rngs.len(), "one rng per item");
    let per_item = config.budget.sg_samples.max(1);
    let mut noisy = Vec::with_capacity(items.len() * per_item);
    let mut classes = Vec::with_capacity(items.len() * per_item);
    for ((image, class), rng) in items.iter().zip(rngs.iter_mut()) {
        noisy.extend(materialize(image, config, rng));
        classes.extend(std::iter::repeat_n(*class, per_item));
    }
    let grads = batch::class_gradients_multi(
        model,
        &noisy,
        &classes,
        config.budget.effective_batch_size(),
    );
    items
        .iter()
        .zip(grads.chunks(per_item))
        .map(|((image, _), grads)| reduce(image, grads))
        .collect()
}

/// Draws the Gaussian-noised copies of `image` — the complete RNG
/// consumption for one SmoothGrad item, in the historical draw order.
fn materialize(image: &Tensor, config: &ExplainerConfig, rng: &mut impl Rng) -> Vec<Tensor> {
    (0..config.budget.sg_samples.max(1))
        .map(|_| image.with_gaussian_noise(config.sg_sigma, rng))
        .collect()
}

/// Folds the per-sample gradients into the `[H, W]` saliency map.
fn reduce(image: &Tensor, grads: &[Tensor]) -> Tensor {
    let mut acc = Tensor::zeros(image.shape());
    for grad in grads {
        acc.add_assign(&grad.abs()).expect("gradient shape");
    }
    aggregate_channels(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use remix_nn::layers::{Dense, Flatten};
    use remix_nn::{InputSpec, Sequential};

    /// A linear model whose gradient is its weight row — ground truth for
    /// saliency.
    fn linear_model(weights: &[f32]) -> Model {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Flatten::new());
        let mut dense = Dense::new(4, 2, &mut rng);
        // class-0 row = weights, class-1 row = zeros
        let mut w = vec![0.0f32; 8];
        w[..4].copy_from_slice(weights);
        dense_set(&mut dense, &w);
        net.push(dense);
        Model::new(
            net,
            InputSpec {
                channels: 1,
                size: 2,
                num_classes: 2,
            },
        )
    }

    fn dense_set(dense: &mut Dense, w: &[f32]) {
        use remix_nn::Layer;
        dense.visit_params(&mut |p, _| {
            if p.len() == w.len() {
                p.data_mut().copy_from_slice(w);
            }
        });
    }

    #[test]
    fn saliency_matches_linear_weights() {
        let mut model = linear_model(&[5.0, 0.0, 0.0, 1.0]);
        let image = Tensor::full(&[1, 2, 2], 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let m = explain(&mut model, &image, 0, &ExplainerConfig::default(), &mut rng);
        // strongest attribution where the weight is largest
        assert_eq!(m.argmax().unwrap(), 0);
        assert_eq!(m.at(&[0, 0]), 1.0);
        assert!(m.at(&[0, 1]) < 0.1);
        assert!(m.at(&[1, 1]) > 0.1); // the 1.0-weight pixel is nonzero
    }

    #[test]
    fn more_samples_reduce_variance() {
        let mut model = linear_model(&[1.0, 1.0, 1.0, 1.0]);
        let image = Tensor::full(&[1, 2, 2], 0.5);
        // linear model: gradient is constant, so any sample count gives the
        // same (uniform) map; just confirm determinism under seeds
        let cfg = ExplainerConfig {
            budget: crate::XaiBudget {
                sg_samples: 16,
                ..crate::XaiBudget::default()
            },
            ..ExplainerConfig::default()
        };
        let a = explain(&mut model, &image, 0, &cfg, &mut StdRng::seed_from_u64(3));
        let b = explain(&mut model, &image, 0, &cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
