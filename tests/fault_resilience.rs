//! Cross-crate resilience behaviour: faults degrade learning, ensembles
//! resist better than individuals, and the injection bookkeeping is sound
//! end-to-end.

use rand::{rngs::StdRng, SeedableRng};
use remix::data::SyntheticSpec;
use remix::ensemble::{evaluate, train_zoo, TrainedEnsemble, UniformMajority};
use remix::faults::{inject, inject_multi, ConfusionPattern, FaultConfig, FaultType, MultiFault};
use remix::nn::Arch;

#[test]
fn heavy_mislabelling_degrades_a_single_model() {
    let (train, test) = SyntheticSpec::mnist_like()
        .train_size(200)
        .test_size(60)
        .generate();
    let pattern = ConfusionPattern::uniform(10);
    let mut rng = StdRng::seed_from_u64(1);
    let faulty = inject(
        &train,
        FaultConfig::new(FaultType::Mislabelling, 0.5),
        &pattern,
        &mut rng,
    );
    let mut clean_model = train_zoo(&[Arch::ConvNet], &train, 8, 3);
    let mut dirty_model = train_zoo(&[Arch::ConvNet], &faulty.dataset, 8, 3);
    let acc = |model: &mut remix::nn::Model| {
        test.iter()
            .filter(|(img, l)| model.predict(img).0 == *l)
            .count() as f32
            / test.len() as f32
    };
    let clean = acc(&mut clean_model[0]);
    let dirty = acc(&mut dirty_model[0]);
    assert!(
        clean > dirty + 0.1,
        "50% mislabelling should hurt: clean {clean:.2} vs dirty {dirty:.2}"
    );
}

#[test]
fn removal_and_repetition_keep_models_trainable() {
    let (train, test) = SyntheticSpec::mnist_like()
        .train_size(200)
        .test_size(50)
        .generate();
    let pattern = ConfusionPattern::uniform(10);
    for ty in [FaultType::Removal, FaultType::Repetition] {
        let mut rng = StdRng::seed_from_u64(2);
        let faulty = inject(&train, FaultConfig::new(ty, 0.3), &pattern, &mut rng);
        let mut models = train_zoo(&[Arch::ConvNet], &faulty.dataset, 8, 4);
        let correct = test
            .iter()
            .filter(|(img, l)| models[0].predict(img).0 == *l)
            .count();
        assert!(
            correct as f32 / test.len() as f32 > 0.4,
            "{ty} at 30% should be survivable, got {correct}/{}",
            test.len()
        );
    }
}

#[test]
fn ensemble_majority_resists_mislabelling_at_least_as_well_as_average_member() {
    let (train, test) = SyntheticSpec::mnist_like()
        .train_size(250)
        .test_size(80)
        .generate();
    let pattern = ConfusionPattern::uniform(10);
    let mut rng = StdRng::seed_from_u64(5);
    let faulty = inject(
        &train,
        FaultConfig::new(FaultType::Mislabelling, 0.3),
        &pattern,
        &mut rng,
    );
    let models = train_zoo(
        &[Arch::ConvNet, Arch::ResNet18, Arch::MobileNet],
        &faulty.dataset,
        8,
        6,
    );
    let mut ensemble = TrainedEnsemble::new(models);
    // mean individual accuracy
    let mut individual_sum = 0.0;
    for m in 0..3 {
        let correct = test
            .iter()
            .filter(|(img, l)| ensemble.models[m].predict(img).0 == *l)
            .count();
        individual_sum += correct as f32 / test.len() as f32;
    }
    let mean_individual = individual_sum / 3.0;
    let umaj = evaluate(&mut UniformMajority, &mut ensemble, &test);
    assert!(
        umaj.accuracy + 0.05 >= mean_individual,
        "majority {:.3} should not trail the mean member {:.3} by much",
        umaj.accuracy,
        mean_individual
    );
}

#[test]
fn combined_faults_compound() {
    let (train, _) = SyntheticSpec::mnist_like().train_size(200).generate();
    let pattern = ConfusionPattern::uniform(10);
    let mut rng = StdRng::seed_from_u64(7);
    let faulty = inject_multi(
        &train,
        &MultiFault::mislabel_and_removal(0.4),
        &pattern,
        &mut rng,
    );
    // 20% mislabelling then 20% removal: size shrinks, labels corrupted
    assert_eq!(faulty.dataset.len(), 160);
    let flipped = faulty
        .dataset
        .labels
        .iter()
        .zip(faulty.dataset.images.iter())
        .count();
    assert_eq!(flipped, 160);
}

#[test]
fn poisoned_inputs_do_not_crash_inference() {
    let (train, _) = SyntheticSpec::mnist_like().train_size(120).generate();
    let mut models = train_zoo(&[Arch::ConvNet], &train, 2, 8);
    // NaN pixels: inference must not panic (outputs may be garbage, but the
    // pipeline stays alive and flags the problem via has_non_finite)
    let mut poisoned = train.images[0].clone();
    poisoned.data_mut()[7] = f32::NAN;
    let probs = models[0].predict_proba(&poisoned);
    assert_eq!(probs.len(), 10);
    assert!(poisoned.has_non_finite());
}
