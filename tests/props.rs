//! Property-based tests over the core data structures and invariants
//! (proptest): tensor algebra, diversity metrics, entropy, sparseness,
//! voting, and fault-injection accounting.

use proptest::prelude::*;
use remix::diversity::{shannon_entropy, sparseness_with_threshold, DiversityMetric};
use remix::ensemble::metrics::{balanced_accuracy, f1_binary};
use remix::ensemble::Prediction;
use remix::faults::{inject, ConfusionPattern, FaultConfig, FaultType};
use remix::tensor::Tensor;
use remix_data::Dataset;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, len).prop_map(|v| Tensor::from_slice(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- tensor algebra ---

    #[test]
    fn addition_commutes(a in tensor_strategy(24), b in tensor_strategy(24)) {
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn matmul_identity_is_noop(v in prop::collection::vec(-5.0f32..5.0, 16)) {
        let m = Tensor::from_vec(v, &[4, 4]).unwrap();
        let out = m.matmul(&Tensor::eye(4)).unwrap();
        prop_assert_eq!(out, m);
    }

    #[test]
    fn transpose_is_involution(v in prop::collection::vec(-5.0f32..5.0, 12)) {
        let m = Tensor::from_vec(v, &[3, 4]).unwrap();
        prop_assert_eq!(m.transpose().unwrap().transpose().unwrap(), m);
    }

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-30.0f32..30.0, 2..20)) {
        let s = Tensor::from_slice(&logits).softmax();
        prop_assert!(!s.has_non_finite());
        prop_assert!((s.sum() - 1.0).abs() < 1e-4);
        prop_assert!(s.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn normalize_minmax_bounds(t in tensor_strategy(16)) {
        let n = t.normalize_minmax();
        prop_assert!(n.min().unwrap() >= 0.0);
        prop_assert!(n.max().unwrap() <= 1.0);
    }

    // --- diversity metrics ---

    #[test]
    fn metrics_are_commutative_and_finite(a in tensor_strategy(16), b in tensor_strategy(16)) {
        for metric in DiversityMetric::ALL {
            let ab = metric.distance(&a, &b);
            let ba = metric.distance(&b, &a);
            prop_assert!(ab.is_finite());
            prop_assert!((ab - ba).abs() < 1e-4, "{} not commutative", metric);
        }
    }

    #[test]
    fn self_distance_is_minimal(a in tensor_strategy(16)) {
        prop_assert_eq!(DiversityMetric::FrobeniusNorm.distance(&a, &a), 0.0);
        prop_assert_eq!(DiversityMetric::Wasserstein.distance(&a, &a), 0.0);
        prop_assert!(DiversityMetric::CosineDistance.distance(&a, &a) < 1e-4);
    }

    #[test]
    fn cosine_distance_in_range(a in tensor_strategy(16), b in tensor_strategy(16)) {
        let d = DiversityMetric::CosineDistance.distance(&a, &b);
        prop_assert!((0.0..=2.0).contains(&d));
    }

    #[test]
    fn r_squared_in_unit_interval(a in tensor_strategy(16), b in tensor_strategy(16)) {
        let d = DiversityMetric::RSquared.distance(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    // --- entropy & sparseness ---

    #[test]
    fn entropy_is_bounded(p in prop::collection::vec(0.001f32..1.0, 2..30)) {
        let h = shannon_entropy(&p);
        prop_assert!((0.0..=1.0).contains(&h));
    }

    #[test]
    fn sparseness_is_a_fraction(t in tensor_strategy(25), thresh in 0.0f32..1.0) {
        let s = sparseness_with_threshold(&t, thresh);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    // --- evaluation metrics ---

    #[test]
    fn balanced_accuracy_bounds(
        labels in prop::collection::vec(0usize..4, 4..40),
        preds_raw in prop::collection::vec(0usize..5, 4..40),
    ) {
        let n = labels.len().min(preds_raw.len());
        let preds: Vec<Prediction> = preds_raw[..n]
            .iter()
            .map(|&p| if p == 4 { Prediction::NoMajority } else { Prediction::Decided(p) })
            .collect();
        let ba = balanced_accuracy(&preds, &labels[..n], 4);
        prop_assert!((0.0..=1.0).contains(&ba));
        let all_right: Vec<Prediction> = labels[..n].iter().map(|&l| Prediction::Decided(l)).collect();
        prop_assert_eq!(balanced_accuracy(&all_right, &labels[..n], 4), 1.0);
    }

    #[test]
    fn f1_bounds(
        labels in prop::collection::vec(0usize..2, 4..30),
        preds_raw in prop::collection::vec(0usize..2, 4..30),
    ) {
        let n = labels.len().min(preds_raw.len());
        let preds: Vec<Prediction> = preds_raw[..n].iter().map(|&p| Prediction::Decided(p)).collect();
        let f1 = f1_binary(&preds, &labels[..n]);
        prop_assert!((0.0..=1.0).contains(&f1));
    }

    // --- fault injection accounting ---

    #[test]
    fn mislabelling_amount_is_respected(amount in 0.0f32..=1.0, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let images = (0..40).map(|_| Tensor::zeros(&[1, 4, 4])).collect();
        let labels = (0..40).map(|i| i % 5).collect();
        let d = Dataset::new(images, labels, 5, 1, 4, "prop");
        let pattern = ConfusionPattern::uniform(5);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = inject(&d, FaultConfig::new(FaultType::Mislabelling, amount), &pattern, &mut rng);
        let expected = (40.0 * amount).round() as usize;
        prop_assert_eq!(f.corrupted.len(), expected);
        // every corrupted sample has a changed label; none maps to itself
        for &(i, orig) in &f.original_labels {
            prop_assert_ne!(f.dataset.labels[i], orig);
        }
        prop_assert_eq!(f.dataset.len(), 40);
    }

    #[test]
    fn removal_and_repetition_sizes(amount in 0.0f32..0.9, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let images = (0..50).map(|_| Tensor::zeros(&[1, 4, 4])).collect();
        let labels = (0..50).map(|i| i % 5).collect();
        let d = Dataset::new(images, labels, 5, 1, 4, "prop");
        let pattern = ConfusionPattern::uniform(5);
        let k = (50.0 * amount).round() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let removed = inject(&d, FaultConfig::new(FaultType::Removal, amount), &pattern, &mut rng);
        prop_assert_eq!(removed.dataset.len(), 50 - k);
        let repeated = inject(&d, FaultConfig::new(FaultType::Repetition, amount), &pattern, &mut rng);
        prop_assert_eq!(repeated.dataset.len(), 50 + k);
    }

    #[test]
    fn confusion_pattern_rows_are_stochastic(classes in 2usize..12, seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng};
        let pattern = ConfusionPattern::uniform(classes);
        let mut rng = StdRng::seed_from_u64(seed);
        for c in 0..classes {
            prop_assert!((pattern.row(c).iter().sum::<f32>() - 1.0).abs() < 1e-4);
            let r = pattern.sample_replacement(c, &mut rng);
            prop_assert_ne!(r, c);
            prop_assert!(r < classes);
        }
    }
}
