//! End-to-end integration: dataset → pattern extraction → fault injection →
//! zoo training → ensemble selection → every voter, including ReMIX.

use rand::{rngs::StdRng, SeedableRng};
use remix::core::Remix;
use remix::data::SyntheticSpec;
use remix::ensemble::{
    evaluate, select_best_ensemble, train_zoo, BestIndividual, StackedDynamic, StaticWeighted,
    UniformAverage, UniformMajority, Voter,
};
use remix::faults::{inject, pattern, FaultConfig, FaultType};
use remix::nn::Arch;
use remix_core::RemixVoter;

fn trained_stack() -> (
    remix::ensemble::TrainedEnsemble,
    remix::data::Dataset,
    remix::data::Dataset,
) {
    let (train, test) = SyntheticSpec::mnist_like()
        .train_size(200)
        .test_size(60)
        .seed(3)
        .generate();
    let pat = pattern::extract(&train, 2, 5);
    let mut rng = StdRng::seed_from_u64(9);
    let faulty = inject(
        &train,
        FaultConfig::new(FaultType::Mislabelling, 0.2),
        &pat,
        &mut rng,
    );
    let (_, validation) = faulty.dataset.split(0.2, &mut rng);
    let models = train_zoo(
        &[
            Arch::ConvNet,
            Arch::DeconvNet,
            Arch::ResNet18,
            Arch::MobileNet,
        ],
        &faulty.dataset,
        6,
        17,
    );
    let (ensemble, indices, _) = select_best_ensemble(models, 3, &validation);
    assert_eq!(indices.len(), 3);
    (ensemble, validation, test)
}

#[test]
fn full_pipeline_all_voters_beat_chance() {
    let (mut ensemble, validation, test) = trained_stack();
    let mut voters: Vec<Box<dyn Voter>> = vec![
        Box::new(BestIndividual::fit(&mut ensemble, &validation)),
        Box::new(UniformMajority),
        Box::new(UniformAverage),
        Box::new(StaticWeighted::fit(&mut ensemble, &validation)),
        Box::new(StackedDynamic::fit(&mut ensemble, &validation)),
        Box::new(RemixVoter::new(Remix::builder().build())),
    ];
    for voter in &mut voters {
        let eval = evaluate(voter.as_mut(), &mut ensemble, &test);
        assert!(
            eval.balanced_accuracy > 0.3,
            "{} only reached BA {:.3} (chance = 0.1)",
            eval.voter,
            eval.balanced_accuracy
        );
        assert!(eval.balanced_accuracy <= 1.0);
        assert_eq!(eval.predictions.len(), test.len());
    }
}

#[test]
fn remix_verdicts_are_internally_consistent() {
    let (mut ensemble, _, test) = trained_stack();
    let remix = Remix::builder().keep_feature_matrices(true).build();
    let mut saw_disagreement = false;
    for (img, _) in test.iter().take(30) {
        let verdict = remix.predict(&mut ensemble, img);
        if verdict.unanimous {
            assert!(verdict.details.is_empty());
            continue;
        }
        saw_disagreement = true;
        assert_eq!(verdict.details.len(), 3);
        // Eq. 5 holds for every model
        for d in &verdict.details {
            let expected = d.confidence * d.diversity * (20.0 * d.sparseness).tanh();
            assert!((d.weight - expected).abs() < 1e-5, "Eq. 5 violated");
            let fm = d.feature_matrix.as_ref().expect("matrices kept");
            assert_eq!(fm.shape(), &[16, 16]);
            assert!(!fm.has_non_finite());
        }
        // the decision, when made, is one of the constituent votes
        if let Some(class) = verdict.prediction.class() {
            assert!(verdict.details.iter().any(|d| d.pred == class));
        }
    }
    assert!(saw_disagreement, "test set produced no disagreements");
}

#[test]
fn remix_is_deterministic_end_to_end() {
    let (mut ensemble, _, test) = trained_stack();
    let remix = Remix::builder().seed(11).build();
    let first: Vec<_> = test
        .images
        .iter()
        .take(10)
        .map(|img| remix.predict(&mut ensemble, img).prediction)
        .collect();
    let second: Vec<_> = test
        .images
        .iter()
        .take(10)
        .map(|img| remix.predict(&mut ensemble, img).prediction)
        .collect();
    assert_eq!(first, second);
}
