//! Tracing integration: enabling the `remix-trace` telemetry layer must not
//! change a single bit of ReMIX's verdicts, and the span tree it records must
//! describe the prediction pipeline it observed.

use rand::{rngs::StdRng, SeedableRng};
use remix::core::Remix;
use remix::data::SyntheticSpec;
use remix::ensemble::{select_best_ensemble, train_zoo};
use remix::faults::{inject, pattern, FaultConfig, FaultType};
use remix::nn::Arch;
use remix::trace;

/// Everything a verdict decides, with the floats as raw bits so the
/// comparison is exact rather than approximate.
#[derive(Debug, PartialEq, Eq)]
struct VerdictBits {
    prediction: Option<usize>,
    unanimous: bool,
    details: Vec<(usize, u32, u32, u32, u32)>,
}

fn verdict_bits(verdict: &remix::core::RemixVerdict) -> VerdictBits {
    VerdictBits {
        prediction: verdict.prediction.class(),
        unanimous: verdict.unanimous,
        details: verdict
            .details
            .iter()
            .map(|d| {
                (
                    d.pred,
                    d.confidence.to_bits(),
                    d.diversity.to_bits(),
                    d.sparseness.to_bits(),
                    d.weight.to_bits(),
                )
            })
            .collect(),
    }
}

#[test]
fn tracing_leaves_verdicts_bit_identical_and_records_the_pipeline() {
    let (train, test) = SyntheticSpec::mnist_like()
        .train_size(150)
        .test_size(40)
        .seed(5)
        .generate();
    let pat = pattern::extract(&train, 2, 5);
    let mut rng = StdRng::seed_from_u64(4);
    let faulty = inject(
        &train,
        FaultConfig::new(FaultType::Mislabelling, 0.25),
        &pat,
        &mut rng,
    );
    let (_, validation) = faulty.dataset.split(0.2, &mut rng);
    let models = train_zoo(
        &[Arch::ConvNet, Arch::DeconvNet, Arch::ResNet18],
        &faulty.dataset,
        4,
        21,
    );
    let (mut ensemble, _, _) = select_best_ensemble(models, 3, &validation);
    let remix = Remix::builder().seed(7).build();
    let inputs: Vec<_> = test.images.iter().take(16).collect();

    // Baseline pass with telemetry fully disabled (the default).
    assert!(!trace::enabled());
    let untraced: Vec<VerdictBits> = inputs
        .iter()
        .map(|img| verdict_bits(&remix.predict(&mut ensemble, img)))
        .collect();

    // Same inputs with every span, counter, and histogram recording live.
    trace::reset();
    trace::set_enabled(true);
    let traced: Vec<VerdictBits> = inputs
        .iter()
        .map(|img| verdict_bits(&remix.predict(&mut ensemble, img)))
        .collect();
    trace::set_enabled(false);
    let report = trace::snapshot();

    assert_eq!(untraced, traced, "tracing changed a verdict bit");

    // The recorded tree must root at `predict` and cover the stages.
    let predict = report
        .spans
        .iter()
        .find(|s| s.name == "predict")
        .expect("predict root span recorded");
    assert_eq!(predict.count, inputs.len() as u64);
    let stage = |name: &str| predict.children.iter().find(|c| c.name == name);
    assert!(stage("prediction").is_some(), "prediction stage missing");
    let disagreements = report
        .counters
        .iter()
        .find(|c| c.name == "disagreements")
        .map_or(0, |c| c.value);
    let fast_path = report
        .counters
        .iter()
        .find(|c| c.name == "fast_path_hits")
        .map_or(0, |c| c.value);
    assert_eq!(disagreements + fast_path, inputs.len() as u64);
    if disagreements > 0 {
        assert!(stage("xai").is_some(), "xai stage missing despite verdicts");
        assert!(stage("diversity").is_some());
        assert!(stage("weighting").is_some());
    }
    let predictions = report
        .counters
        .iter()
        .find(|c| c.name == "predictions")
        .map_or(0, |c| c.value);
    assert_eq!(predictions, inputs.len() as u64);

    // The report survives the JSON round trip the exporter uses.
    let text = report.to_json_string();
    let parsed = trace::TraceReport::from_json(&text).expect("report round-trips");
    assert_eq!(parsed, report);
}
