//! XAI techniques against genuinely trained models: matrices differ between
//! architectures (the diversity ReMIX exploits), evaluation metrics run, and
//! degenerate inputs are survivable.

use rand::{rngs::StdRng, SeedableRng};
use remix::data::SyntheticSpec;
use remix::diversity::DiversityMetric;
use remix::ensemble::train_zoo;
use remix::nn::Arch;
use remix::tensor::Tensor;
use remix::xai::{eval, Explainer, XaiTechnique};

#[test]
fn different_architectures_explain_differently() {
    let (train, test) = SyntheticSpec::mnist_like()
        .train_size(200)
        .test_size(20)
        .generate();
    let mut models = train_zoo(&[Arch::ConvNet, Arch::MobileNet], &train, 6, 3);
    let explainer = Explainer::new(XaiTechnique::SmoothGrad);
    let mut rng = StdRng::seed_from_u64(1);
    let mut total_div = 0.0;
    let mut count = 0;
    for (img, _) in test.iter().take(8) {
        let (pred_a, _) = models[0].predict(img);
        let (pred_b, _) = models[1].predict(img);
        let ma = explainer.explain(&mut models[0], img, pred_a, &mut rng);
        let mb = explainer.explain(&mut models[1], img, pred_b, &mut rng);
        total_div += DiversityMetric::CosineDistance.distance(&ma, &mb);
        count += 1;
    }
    let mean_div = total_div / count as f32;
    assert!(
        mean_div > 0.01,
        "two architectures produced near-identical feature spaces ({mean_div})"
    );
}

#[test]
fn same_model_explains_itself_consistently() {
    let (train, test) = SyntheticSpec::mnist_like()
        .train_size(150)
        .test_size(10)
        .generate();
    let mut models = train_zoo(&[Arch::ConvNet], &train, 5, 4);
    let explainer = Explainer::new(XaiTechnique::IntegratedGradients); // deterministic
    let mut rng = StdRng::seed_from_u64(2);
    let img = &test.images[0];
    let (pred, _) = models[0].predict(img);
    let a = explainer.explain(&mut models[0], img, pred, &mut rng);
    let b = explainer.explain(&mut models[0], img, pred, &mut rng);
    assert_eq!(a, b, "IG must be deterministic for a fixed model and input");
    assert!(DiversityMetric::RSquared.distance(&a, &b) > 0.99);
}

#[test]
fn faithfulness_and_stability_run_on_trained_models() {
    let (train, test) = SyntheticSpec::mnist_like()
        .train_size(200)
        .test_size(10)
        .generate();
    let mut models = train_zoo(&[Arch::ConvNet], &train, 6, 5);
    let mut rng = StdRng::seed_from_u64(3);
    let explainer = Explainer::new(XaiTechnique::SmoothGrad);
    let img = &test.images[0];
    let faith = eval::faithfulness_correlation(&mut models[0], &explainer, img, 16, 0.25, &mut rng);
    assert!((-1.0..=1.0).contains(&faith));
    let ris = eval::relative_input_stability(&mut models[0], &explainer, img, 3, 0.05, &mut rng);
    assert!(ris.is_finite() && ris >= 0.0);
}

#[test]
fn techniques_survive_constant_and_extreme_inputs() {
    let (train, _) = SyntheticSpec::mnist_like().train_size(120).generate();
    let mut models = train_zoo(&[Arch::ConvNet], &train, 2, 6);
    let mut rng = StdRng::seed_from_u64(4);
    for image in [
        Tensor::zeros(&[1, 16, 16]),
        Tensor::ones(&[1, 16, 16]),
        Tensor::full(&[1, 16, 16], 0.5),
    ] {
        let (pred, _) = models[0].predict(&image);
        for technique in XaiTechnique::ALL {
            let m = Explainer::new(technique).explain(&mut models[0], &image, pred, &mut rng);
            assert!(!m.has_non_finite(), "{technique} NaN on degenerate input");
            assert_eq!(m.shape(), &[16, 16]);
        }
    }
}
