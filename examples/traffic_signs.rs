//! Traffic-sign recognition under faulty training data — the paper's
//! autonomous-vehicle motivating scenario.
//!
//! Trains the full 9-architecture zoo on a GTSRB-like dataset with an
//! *extracted, asymmetric* mislabelling pattern injected (the realistic
//! regime of §II-A), selects the most resilient 3-model ensemble out of the
//! 84 candidates, and compares every voting baseline with ReMIX — including
//! the disengagement-latency check from RQ2.
//!
//! ```sh
//! cargo run --release --example traffic_signs
//! ```

use rand::{rngs::StdRng, SeedableRng};
use remix::core::Remix;
use remix::data::SyntheticSpec;
use remix::ensemble::{
    evaluate, select_best_ensemble, train_zoo, StackedDynamic, StaticWeighted, UniformAverage,
    UniformMajority, Voter,
};
use remix::faults::{inject, pattern, FaultConfig, FaultType};
use remix::nn::Arch;
use remix_core::RemixVoter;
use std::time::{Duration, Instant};

fn main() {
    println!("== Traffic-sign recognition with 30% asymmetric mislabelling ==\n");
    let (train, test) = SyntheticSpec::gtsrb_like()
        .train_size(860)
        .test_size(250)
        .generate();
    // Cleanlab-style confusion extraction drives the asymmetric injection
    let confusion = pattern::extract(&train, 3, 5);
    println!(
        "extracted confusion pattern over {} classes (asymmetry {:.3})",
        confusion.num_classes(),
        confusion.asymmetry()
    );
    let mut rng = StdRng::seed_from_u64(7);
    let faulty = inject(
        &train,
        FaultConfig::new(FaultType::Mislabelling, 0.3),
        &confusion,
        &mut rng,
    );
    // train the full zoo and pick the most resilient trio (paper §V-B)
    let t = Instant::now();
    let models = train_zoo(&Arch::ALL, &faulty.dataset, 8, 11);
    println!("trained 9 architectures in {:.0?}", t.elapsed());
    let (_, validation) = faulty.dataset.split(0.15, &mut rng);
    let (mut ensemble, _, score) = select_best_ensemble(models, 3, &validation);
    println!(
        "best ensemble of C(9,3)=84 candidates: {:?} (validation BA {score:.3})\n",
        ensemble.names()
    );
    let mut voters: Vec<Box<dyn Voter>> = vec![
        Box::new(UniformMajority),
        Box::new(UniformAverage),
        Box::new(StaticWeighted::fit(&mut ensemble, &validation)),
        Box::new(StackedDynamic::fit(&mut ensemble, &validation)),
        Box::new(RemixVoter::new(Remix::builder().build())),
    ];
    println!("{:<8} {:>7}", "voter", "BA");
    for v in voters.iter_mut() {
        let e = evaluate(v.as_mut(), &mut ensemble, &test);
        println!("{:<8} {:>7.3}", e.voter, e.balanced_accuracy);
    }
    // RQ2's safety check: worst-case ReMIX latency vs the 0.83 s AV
    // disengagement budget
    let remix = Remix::builder().build();
    let mut worst = Duration::ZERO;
    for (img, _) in test.iter().take(100) {
        let verdict = remix.predict(&mut ensemble, img);
        worst = worst.max(verdict.timings.total());
    }
    println!(
        "\nworst-case ReMIX inference over 100 inputs: {worst:.2?} \
         (AV disengagement budget: 830ms)"
    );
}
