//! Quickstart: train a small ensemble on faulty data and let ReMIX vote.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::{rngs::StdRng, SeedableRng};
use remix::core::Remix;
use remix::data::SyntheticSpec;
use remix::ensemble::{evaluate, train_zoo, TrainedEnsemble, UniformMajority};
use remix::faults::{inject, ConfusionPattern, FaultConfig, FaultType};
use remix::nn::Arch;
use remix_core::RemixVoter;

fn main() {
    // 1. A dataset (synthetic MNIST analogue) with a fault injection:
    //    30% of the training labels are randomly flipped.
    let (train, test) = SyntheticSpec::mnist_like()
        .train_size(300)
        .test_size(100)
        .seed(1)
        .generate();
    let pattern = ConfusionPattern::uniform(train.num_classes);
    let mut rng = StdRng::seed_from_u64(7);
    let faulty = inject(
        &train,
        FaultConfig::new(FaultType::Mislabelling, 0.3),
        &pattern,
        &mut rng,
    );
    println!(
        "training set: {} samples, {} with corrupted labels",
        faulty.dataset.len(),
        faulty.corrupted.len()
    );

    // 2. An ensemble of three architecturally diverse models, trained
    //    independently on the same faulty data.
    let models = train_zoo(
        &[Arch::ConvNet, Arch::ResNet18, Arch::MobileNet],
        &faulty.dataset,
        8,
        42,
    );
    let mut ensemble = TrainedEnsemble::new(models);

    // 3. Compare simple majority voting with ReMIX.
    let umaj = evaluate(&mut UniformMajority, &mut ensemble, &test);
    let mut remix = RemixVoter::new(Remix::builder().build());
    let remix_eval = evaluate(&mut remix, &mut ensemble, &test);
    println!("\nbalanced accuracy on {} test inputs:", test.len());
    println!("  simple majority: {:.3}", umaj.balanced_accuracy);
    println!("  ReMIX:           {:.3}", remix_eval.balanced_accuracy);

    // 4. Inspect one disagreement in detail.
    let remix = Remix::builder().build();
    for (img, label) in test.iter() {
        let verdict = remix.predict(&mut ensemble, img);
        if verdict.unanimous {
            continue;
        }
        println!("\nfirst disagreement (true label {label}):");
        for d in &verdict.details {
            println!(
                "  {:<10} votes {:<2} with weight {:.4} (c={:.2} δ={:.3} σ={:.2})",
                d.name, d.pred, d.weight, d.confidence, d.diversity, d.sparseness
            );
        }
        println!("  ReMIX decides: {:?}", verdict.prediction);
        println!(
            "  time: prediction {:?} + XAI {:?} + weighting {:?}",
            verdict.timings.prediction, verdict.timings.xai, verdict.timings.weighting
        );
        break;
    }
}
