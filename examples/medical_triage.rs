//! Pneumonia triage — the paper's medical imaging scenario.
//!
//! A binary, class-imbalanced chest-X-ray analogue where false negatives are
//! costly, so the F1 score is the metric (paper Table II) and ReMIX's
//! below-majority abstentions are surfaced as "refer to a radiologist"
//! rather than silently guessing.
//!
//! ```sh
//! cargo run --release --example medical_triage
//! ```

use rand::{rngs::StdRng, SeedableRng};
use remix::core::Remix;
use remix::data::SyntheticSpec;
use remix::ensemble::{evaluate, train_zoo, Prediction, TrainedEnsemble, UniformMajority};
use remix::faults::{inject_multi, ConfusionPattern, MultiFault};
use remix::nn::Arch;
use remix_core::RemixVoter;

fn main() {
    println!("== Pneumonia triage under combined mislabelling + removal faults ==\n");
    let (train, test) = SyntheticSpec::pneumonia_like()
        .train_size(400)
        .test_size(200)
        .generate();
    let counts = train.class_counts();
    println!(
        "training set: {} normal, {} pneumonia (imbalanced like the original)",
        counts[0], counts[1]
    );
    // the Fig. 7h setting: 15% mislabelling + 15% removal
    let pattern = ConfusionPattern::uniform(2);
    let mut rng = StdRng::seed_from_u64(3);
    let faulty = inject_multi(
        &train,
        &MultiFault::mislabel_and_removal(0.3),
        &pattern,
        &mut rng,
    );
    let models = train_zoo(
        &[Arch::ConvNet, Arch::ResNet18, Arch::EfficientNetV2B0],
        &faulty.dataset,
        8,
        21,
    );
    let mut ensemble = TrainedEnsemble::new(models);
    let umaj = evaluate(&mut UniformMajority, &mut ensemble, &test);
    let mut remix_voter = RemixVoter::new(Remix::builder().build());
    let remix_eval = evaluate(&mut remix_voter, &mut ensemble, &test);
    println!("\nF1 (positive = pneumonia) on {} studies:", test.len());
    println!("  simple majority: {:.3}", umaj.f1);
    println!("  ReMIX:           {:.3}", remix_eval.f1);
    // triage report: decisions vs referrals
    let referred = remix_eval
        .predictions
        .iter()
        .filter(|p| **p == Prediction::NoMajority)
        .count();
    let decided = test.len() - referred;
    let decided_correct = remix_eval
        .predictions
        .iter()
        .zip(&test.labels)
        .filter(|(p, &l)| p.is_correct(l))
        .count();
    println!("\ntriage outcome:");
    println!("  auto-decided: {decided} ({decided_correct} correct)");
    println!("  referred to radiologist (no weighted majority): {referred}");
    // the referral set should be harder than average: check its 1-correct rate
    let mut hard = 0;
    for ((img, l), p) in test.iter().zip(&remix_eval.predictions) {
        if *p == Prediction::NoMajority && ensemble.count_correct(img, l) <= 1 {
            hard += 1;
        }
    }
    if referred > 0 {
        println!(
            "  of the referrals, {hard} had at most one correct constituent model \
             (genuinely ambiguous studies)"
        );
    }
}
