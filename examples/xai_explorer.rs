//! XAI explorer: apply all five techniques to the same (model, input) pair,
//! render the feature matrices, and cross-compare them with every diversity
//! metric — a sandbox for the ReMIX building blocks.
//!
//! ```sh
//! cargo run --release --example xai_explorer
//! ```

use rand::{rngs::StdRng, SeedableRng};
use remix::data::SyntheticSpec;
use remix::diversity::{sparseness, DiversityMetric};
use remix::ensemble::train_zoo;
use remix::nn::Arch;
use remix::tensor::Tensor;
use remix::xai::{Explainer, XaiTechnique};
use remix_bench::viz::ascii_row;

fn main() {
    let (train, test) = SyntheticSpec::gtsrb_like()
        .train_size(430)
        .test_size(50)
        .generate();
    let mut models = train_zoo(&[Arch::ConvNet], &train, 8, 5);
    let model = &mut models[0];
    let (image, label) = test
        .iter()
        .find(|(img, l)| model.predict(img).0 == *l)
        .map(|(img, l)| (img.clone(), l))
        .expect("model classifies something correctly");
    println!("== XAI explorer: ConvNet on a gtsrb-like sign (class {label}) ==\n");
    let mut rng = StdRng::seed_from_u64(1);
    let mut matrices: Vec<(String, Tensor)> = vec![("input".into(), image.clone())];
    for technique in XaiTechnique::ALL {
        let m = Explainer::new(technique).explain(model, &image, label, &mut rng);
        println!(
            "{:<5} sparseness(0.2) = {:.2}",
            technique.abbrev(),
            remix::diversity::sparseness_with_threshold(&m, 0.2)
        );
        let _ = sparseness(&m);
        matrices.push((technique.abbrev().to_string(), m));
    }
    let refs: Vec<(&str, &Tensor)> = matrices.iter().map(|(n, t)| (n.as_str(), t)).collect();
    println!("\n{}", ascii_row(&refs));
    // cross-technique diversity: how differently do the techniques explain
    // the SAME model?
    println!("cross-technique diversity of the feature matrices:");
    println!(
        "{:<22} {:>8} {:>8} {:>10} {:>12}",
        "pair", "cosine", "R²", "Frobenius", "Wasserstein"
    );
    for i in 1..matrices.len() {
        for j in (i + 1)..matrices.len() {
            let (a, b) = (&matrices[i].1, &matrices[j].1);
            println!(
                "{:<22} {:>8.3} {:>8.3} {:>10.3} {:>12.4}",
                format!("{} vs {}", matrices[i].0, matrices[j].0),
                DiversityMetric::CosineDistance.distance(a, b),
                DiversityMetric::RSquared.distance(a, b),
                DiversityMetric::FrobeniusNorm.distance(a, b),
                DiversityMetric::Wasserstein.distance(a, b),
            );
        }
    }
}
