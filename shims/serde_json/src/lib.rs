//! Offline drop-in for the `serde_json` subset this workspace uses:
//! [`to_string`] and [`from_str`], implemented as a writer and a
//! recursive-descent parser over the shim `serde::Value` model.
//!
//! Numbers without a `.`, `e`, or `E` parse as integers (preserving full
//! `u64` precision for seeds); everything else parses as `f64`. Non-finite
//! floats serialize as `null`, matching upstream `serde_json` behavior.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes a value to a JSON string.
///
/// # Errors
///
/// Never fails for the shim value model; the `Result` mirrors the upstream
/// signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip Display; force a decimal point so
                // the value re-parses as a float.
                let text = f.to_string();
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (idx, item) in items.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (idx, (key, item)) in pairs.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let value = Value::Object(vec![
            ("name".into(), Value::Str("conv-net \"v2\"\n".into())),
            ("seed".into(), Value::UInt(u64::MAX - 1)),
            ("offset".into(), Value::Int(-42)),
            ("lr".into(), Value::Float(0.0625)),
            (
                "dims".into(),
                Value::Array(vec![Value::UInt(3), Value::UInt(28), Value::UInt(28)]),
            ),
            ("extra".into(), Value::Null),
            ("flag".into(), Value::Bool(true)),
        ]);
        let mut text = String::new();
        write_value(&value, &mut text);
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        assert_eq!(parser.parse_value().unwrap(), value);
    }

    #[test]
    fn integers_keep_full_precision() {
        let text = format!("[{},-{}]", u64::MAX, i64::MAX);
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let parsed = parser.parse_value().unwrap();
        assert_eq!(
            parsed,
            Value::Array(vec![Value::UInt(u64::MAX), Value::Int(-i64::MAX)])
        );
    }

    #[test]
    fn floats_reparse_as_floats() {
        let mut out = String::new();
        write_value(&Value::Float(2.0), &mut out);
        assert_eq!(out, "2.0");
        let mut parser = Parser {
            bytes: out.as_bytes(),
            pos: 0,
        };
        assert_eq!(parser.parse_value().unwrap(), Value::Float(2.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("[1, 2").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn typed_round_trip_through_public_api() {
        let v = vec![1usize, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<usize>>(&text).unwrap(), v);
    }
}
