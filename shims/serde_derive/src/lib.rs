//! Derive macros for the vendored `serde` shim.
//!
//! `syn`/`quote` are unavailable offline, so this walks the raw
//! [`proc_macro::TokenTree`] stream directly. It supports exactly the shapes
//! the workspace derives on: structs with named fields, and enums whose
//! variants are unit or tuple variants. Generic types, tuple structs, and
//! struct variants are rejected with a compile-time panic rather than
//! miscompiled. Enum tagging is external, matching `serde_json` conventions:
//! unit variants serialize as `"Variant"`, tuple variants as
//! `{"Variant": payload}` (payload is an array when arity > 1).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Shape {
    /// Named-field struct: type name + field names (types are inferred at the
    /// use site, so only names are needed).
    Struct { name: String, fields: Vec<String> },
    /// Enum: type name + (variant name, tuple arity) pairs; arity 0 is a unit
    /// variant.
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (doc comments arrive as #[doc = ...]) and
    // visibility qualifiers.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.get(i + 2) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
    let body = tokens[i + 2..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| {
            panic!("serde shim derive: `{name}` has no braced body (tuple structs unsupported)")
        });
    match keyword.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_struct_fields(body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_enum_variants(body),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

/// Collects field names from a named-field struct body. Commas inside angle
/// brackets (e.g. `Vec<(String, Value)>` desugars parens into a group, but
/// `HashMap<K, V>` does not) are ignored by tracking `<`/`>` depth.
fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut at_field_start = true;
    for token in body {
        match token {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => at_field_start = true,
                _ => {}
            },
            TokenTree::Ident(id) if at_field_start => {
                let word = id.to_string();
                if word != "pub" {
                    fields.push(word);
                    at_field_start = false;
                }
            }
            _ => {}
        }
    }
    fields
}

/// Collects (name, tuple arity) for each enum variant; arity 0 = unit.
fn parse_enum_variants(body: TokenStream) -> Vec<(String, usize)> {
    let mut variants: Vec<(String, usize)> = Vec::new();
    let mut angle_depth = 0i32;
    let mut at_variant_start = true;
    for token in body {
        match token {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => at_variant_start = true,
                _ => {}
            },
            TokenTree::Ident(id) if at_variant_start => {
                variants.push((id.to_string(), 0));
                at_variant_start = false;
            }
            TokenTree::Group(g) if !at_variant_start => match g.delimiter() {
                Delimiter::Parenthesis => {
                    variants.last_mut().expect("variant before payload").1 =
                        count_top_level_items(g.stream());
                }
                Delimiter::Brace => panic!(
                    "serde shim derive: struct variant `{}` is not supported",
                    variants.last().map(|v| v.0.as_str()).unwrap_or("?")
                ),
                _ => {}
            },
            _ => {}
        }
    }
    variants
}

/// Number of comma-separated items at the top level of a token stream
/// (tolerates a trailing comma).
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut angle_depth = 0i32;
    let mut in_item = false;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    in_item = false;
                    continue;
                }
                _ => {}
            }
        }
        if !in_item {
            in_item = true;
            count += 1;
        }
    }
    count
}

/// Derives `serde::Serialize` (shim value-model flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(variant, arity)| match arity {
                    0 => format!(
                        "{name}::{variant} => \
                         ::serde::Value::Str(::std::string::String::from(\"{variant}\")),"
                    ),
                    1 => format!(
                        "{name}::{variant}(f0) => ::serde::Value::Object(vec![(\
                         ::std::string::String::from(\"{variant}\"), \
                         ::serde::Serialize::to_value(f0))]),"
                    ),
                    n => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: String = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{variant}({}) => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{variant}\"), \
                             ::serde::Value::Array(vec![{items}]))]),",
                            binders.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated code must parse")
}

/// Derives `serde::Deserialize` (shim value-model flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::field(pairs, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Object(pairs) => {{\n\
                                 let _ = pairs;\n\
                                 Ok({name} {{ {inits} }})\n\
                             }}\n\
                             other => Err(::serde::Error::msg(format!(\n\
                                 \"expected object for {name}, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(variant, _)| format!("\"{variant}\" => Ok({name}::{variant}),"))
                .collect();
            let has_payload = variants.iter().any(|(_, arity)| *arity > 0);
            let payload_arm = if has_payload {
                let tag_arms: String = variants
                    .iter()
                    .filter(|(_, arity)| *arity > 0)
                    .map(|(variant, arity)| {
                        if *arity == 1 {
                            format!(
                                "\"{variant}\" => Ok({name}::{variant}(\
                                 ::serde::Deserialize::from_value(payload)?)),"
                            )
                        } else {
                            let items: String = (0..*arity)
                                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?,"))
                                .collect();
                            format!(
                                "\"{variant}\" => match payload {{\n\
                                     ::serde::Value::Array(items) if items.len() == {arity} => \
                                         Ok({name}::{variant}({items})),\n\
                                     _ => Err(::serde::Error::msg(\n\
                                         \"expected {arity}-element array for \
                                          {name}::{variant}\".to_string())),\n\
                                 }},"
                            )
                        }
                    })
                    .collect();
                format!(
                    "::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, payload) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {tag_arms}\n\
                             other => Err(::serde::Error::msg(format!(\n\
                                 \"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}"
                )
            } else {
                String::new()
            };
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error::msg(format!(\n\
                                     \"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             {payload_arm}\n\
                             other => Err(::serde::Error::msg(format!(\n\
                                 \"expected variant encoding for {name}, found {{}}\",\n\
                                 other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated code must parse")
}
