//! Offline drop-in for the subset of `proptest` this workspace uses.
//!
//! The real crate cannot be fetched in this environment, so this shim keeps
//! the same test-authoring surface — `proptest!`, range and collection
//! strategies, `prop_map`, `prop_assert*` — but implements it as plain
//! deterministic random sampling: each test draws `cases` inputs from a
//! per-test seed (FNV-1a of the test name) and runs the body. There is no
//! shrinking; a failing case panics with the ordinary assert message.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Test-runner configuration (`cases` is the only knob the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies by the `proptest!` runner.
pub type TestRng = StdRng;

/// Deterministic per-test RNG: seeded from an FNV-1a hash of the test name,
/// so every test has its own stable stream regardless of execution order.
pub fn new_test_rng(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// A generator of random values (sampling-only; no shrink tree).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `func`.
    fn prop_map<O, F>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            func,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    func: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.func)(self.strategy.sample_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($range:ident),*) => {$(
        impl<T> Strategy for core::ops::$range<T>
        where
            core::ops::$range<T>: SampleRange<T> + Clone,
        {
            type Value = T;

            fn sample_value(&self, rng: &mut TestRng) -> T {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(Range, RangeInclusive);

/// Strategy combinator modules, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Element-count specification for [`vec()`]: an exact size or a
        /// half-open range of sizes.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(exact: usize) -> Self {
                SizeRange {
                    lo: exact,
                    hi: exact + 1,
                }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(range: core::ops::Range<usize>) -> Self {
                assert!(range.start < range.end, "empty size range");
                SizeRange {
                    lo: range.start,
                    hi: range.end,
                }
            }
        }

        /// Strategy producing `Vec`s of `element` with a size drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.lo + 1 == self.size.hi {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..self.size.hi)
                };
                (0..len).map(|_| self.element.sample_value(rng)).collect()
            }
        }
    }
}

/// Declares deterministic sampling tests with `arg in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::new_test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample_value(&($strat), &mut __rng);)+
                    let _ = __case;
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// `assert!` under the upstream name (no shrink-aware error plumbing).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` under the upstream name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` under the upstream name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn per_test_rngs_are_stable_and_distinct() {
        use rand::RngCore;
        let mut a = super::new_test_rng("alpha");
        let mut b = super::new_test_rng("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::new_test_rng("beta");
        assert_ne!(super::new_test_rng("alpha").next_u64(), c.next_u64());
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = super::new_test_rng("sizes");
        let exact = prop::collection::vec(0usize..5, 7);
        let ranged = prop::collection::vec(-1.0f32..1.0, 2..20);
        for _ in 0..100 {
            assert_eq!(Strategy::sample_value(&exact, &mut rng).len(), 7);
            let v = Strategy::sample_value(&ranged, &mut rng);
            assert!((2..20).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = super::new_test_rng("map");
        let doubled = (0usize..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            let v = Strategy::sample_value(&doubled, &mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(a in 0usize..8, b in 1usize..=4,) {
            prop_assert!(a < 8);
            prop_assert!((1..=4).contains(&b));
            prop_assert_ne!(a + b, a);
        }
    }
}
