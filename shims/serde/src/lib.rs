//! Offline drop-in for the subset of `serde` this workspace uses.
//!
//! The build environment cannot fetch crates, so this shim replaces the real
//! `serde` with a minimal value-model design: [`Serialize`] lowers a type to
//! a JSON-shaped [`Value`] tree, [`Deserialize`] lifts it back. The derive
//! macros (re-exported from the vendored `serde_derive`) cover exactly the
//! shapes the workspace defines: structs with named fields, unit-variant
//! enums, and tuple-variant enums. External tagging matches `serde_json`
//! conventions (`"Variant"` / `{"Variant": ...}`), so on-disk artifacts stay
//! readable if the real stack is ever restored.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
///
/// Integers keep their own variants (rather than collapsing into `f64`) so
/// `u64` seeds survive round trips exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, as insertion-ordered pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The `null` value (usable in `const` position).
    pub const NULL: Value = Value::Null;

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// (De)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a field in an object's pairs; missing fields read as `null` so
/// `Option` fields deserialize to `None`.
pub fn field<'a>(pairs: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    Ok(pairs
        .iter()
        .find(|(k, _)| k == name)
        .map_or(&Value::NULL, |(_, v)| v))
}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Lowers `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
///
/// The lifetime parameter exists for signature compatibility with upstream
/// serde bounds (`for<'de> Deserialize<'de>`); this shim always copies.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds a value.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `value` does not have the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// --- primitive impls ---

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::msg(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::msg(format!("integer {u} out of range for i64")))?,
                    other => {
                        return Err(Error::msg(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::msg(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// `Value` is its own wire form, matching upstream `serde_json::Value`
// implementing both traits; lets callers parse arbitrary JSON dynamically.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&String::from("hi").to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn vec_and_option_round_trip() {
        let v = vec![vec![1usize, 2], vec![3]];
        assert_eq!(Vec::<Vec<usize>>::from_value(&v.to_value()).unwrap(), v);
        let some: Option<Vec<f32>> = Some(vec![0.5]);
        let none: Option<Vec<f32>> = None;
        assert_eq!(
            Option::<Vec<f32>>::from_value(&some.to_value()).unwrap(),
            some
        );
        assert_eq!(
            Option::<Vec<f32>>::from_value(&none.to_value()).unwrap(),
            none
        );
    }

    #[test]
    fn shape_errors_name_the_kinds() {
        let err = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("string"));
        assert!(bool::from_value(&Value::UInt(1)).is_err());
    }

    #[test]
    fn missing_fields_read_as_null() {
        let pairs = vec![(String::from("a"), Value::UInt(1))];
        assert_eq!(field(&pairs, "a").unwrap(), &Value::UInt(1));
        assert_eq!(field(&pairs, "b").unwrap(), &Value::Null);
    }
}
