//! Offline drop-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the real `rand` crate cannot be fetched. This vendored shim implements the
//! exact surface the workspace calls — `rngs::StdRng`, `SeedableRng`, the
//! `Rng` extension methods (`gen`, `gen_range`, `gen_bool`) and
//! `seq::SliceRandom::shuffle` — on top of a xoshiro256++ core with SplitMix64
//! seeding. Streams are deterministic per seed, `Clone`-able, and independent
//! of platform, which is exactly what the ReMIX determinism guarantees need.
//!
//! The numeric streams differ from upstream `rand` (we do not reimplement
//! ChaCha12), so seeds produce different — but equally reproducible — data.

pub mod rngs;
pub mod seq;

/// Core source of uniformly distributed random words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw bits (the `Standard`
/// distribution of upstream `rand`).
pub trait StandardSample {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits -> [0, 1)
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform sampler over an interval (the `SampleUniform` of
/// upstream `rand`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, _inclusive: bool, rng: &mut R) -> $t {
                lo + <$t as StandardSample>::from_rng(rng) * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges that can produce one uniform sample (the `SampleRange` of upstream
/// `rand`). The single generic impl per range shape is what lets type
/// inference flow from an unsuffixed literal range to the sampled type.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its standard domain (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as StandardSample>::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn float_samples_are_unit_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-4isize..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_whole_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes_in_place() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn cloned_rng_continues_identically() {
        let mut a = StdRng::seed_from_u64(5);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
