//! Offline drop-in for the subset of the `criterion` API this workspace's
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`, and `Bencher::{iter, iter_batched}`.
//!
//! Instead of criterion's statistical machinery, each benchmark takes one
//! warm-up call plus `sample_size` timed calls and prints mean/min/max
//! wall-clock per call. Good enough for the relative comparisons the paper
//! figures make (technique A vs technique B on the same machine), with no
//! external dependencies.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark-run entry point, handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 50,
        }
    }
}

/// A named set of benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark; `routine` drives the provided [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        routine(&mut bencher);
        let id = id.into();
        match summarize(&bencher.times) {
            Some((mean, min, max)) => println!(
                "{}/{id}: mean {} (min {}, max {}, {} samples)",
                self.name,
                fmt_duration(mean),
                fmt_duration(min),
                fmt_duration(max),
                bencher.times.len()
            ),
            None => println!("{}/{id}: no samples recorded", self.name),
        }
        self
    }

    /// Ends the group (kept for API compatibility; output is already printed).
    pub fn finish(self) {}
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample after a warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.times = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        self.times = (0..self.samples)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                start.elapsed()
            })
            .collect();
    }
}

/// Input-size hint (ignored by this shim; present for API compatibility).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

fn summarize(times: &[Duration]) -> Option<(Duration, Duration, Duration)> {
    let min = *times.iter().min()?;
    let max = *times.iter().max()?;
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    Some((mean, min, max))
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_one_time_per_sample() {
        let mut group = Criterion::default().benchmark_group("shim");
        group.sample_size(7);
        let mut calls = 0u32;
        let mut bencher = Bencher {
            samples: 7,
            times: Vec::new(),
        };
        bencher.iter(|| calls += 1);
        assert_eq!(bencher.times.len(), 7);
        assert_eq!(calls, 8); // warm-up + samples
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut bencher = Bencher {
            samples: 3,
            times: Vec::new(),
        };
        bencher.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(bencher.times.len(), 3);
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
