//! Umbrella crate for the ReMIX reproduction.
//!
//! Re-exports every workspace crate under one roof so that examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! ```
//! use remix::prelude::*;
//! ```
//!
//! See the individual crates for the substrate documentation:
//! [`remix_tensor`], [`remix_nn`], [`remix_data`], [`remix_faults`],
//! [`remix_xai`], [`remix_diversity`], [`remix_ensemble`], and the ReMIX
//! meta-learner itself in [`remix_core`].

#![warn(missing_docs)]

pub use remix_core as core;
pub use remix_data as data;
pub use remix_diversity as diversity;
pub use remix_ensemble as ensemble;
pub use remix_faults as faults;
pub use remix_nn as nn;
pub use remix_tensor as tensor;
pub use remix_trace as trace;
pub use remix_xai as xai;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use remix_core::{Remix, RemixBuilder, RemixVerdict, RemixVoter};
    pub use remix_data::{Dataset, SyntheticSpec};
    pub use remix_diversity::DiversityMetric;
    pub use remix_ensemble::{evaluate, train_zoo, Prediction, TrainedEnsemble, Voter};
    pub use remix_faults::{inject, ConfusionPattern, FaultConfig, FaultType};
    pub use remix_nn::{Arch, InputSpec, Model, Trainer, TrainerConfig};
    pub use remix_tensor::Tensor;
    pub use remix_xai::{Explainer, XaiTechnique};
}
