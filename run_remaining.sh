#!/bin/sh
set -x
cd "$(dirname "$0")"
B=./target/release
mkdir -p results
$B/fig10_metrics              > results/fig10.txt 2>&1
$B/fig11_ensemble_size        > results/fig11.txt 2>&1
$B/fig07 --panel c            > results/fig07c.txt 2>&1
$B/fig07 --panel d            > results/fig07d.txt 2>&1
$B/fig07 --panel e            > results/fig07e.txt 2>&1
$B/fig07 --panel f            > results/fig07f.txt 2>&1
$B/fig07 --panel g            > results/fig07g.txt 2>&1
$B/fig07 --panel h            > results/fig07h.txt 2>&1
$B/fig09_xai_compare          > results/fig09.txt 2>&1
$B/fig03_correct_proportions  > results/fig03.txt 2>&1
$B/fig04_diversity_scatter    > results/fig04.txt 2>&1
$B/fig06_sparseness           > results/fig06.txt 2>&1
$B/fig01_motivation           > results/fig01.txt 2>&1
$B/fig08_overhead             > results/fig08.txt 2>&1
$B/fig02_xai_gallery          > results/fig02.txt 2>&1
$B/fig12_vit_attention        > results/fig12.txt 2>&1
$B/ablations                  > results/ablations.txt 2>&1
$B/ext_cleaning               > results/ext_cleaning.txt 2>&1
$B/ext_tabular                > results/ext_tabular.txt 2>&1
$B/fig07 --panel i            > results/fig07i.txt 2>&1
$B/fig07 --panel j            > results/fig07j.txt 2>&1
$B/ext_quantization           > results/ext_quantization.txt 2>&1
echo ALL_EXPERIMENTS_DONE
